// Tests for the network substrate: topology algorithms and generators,
// channel model, packet delivery, multi-hop routing, jamming, partitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "net/channel.h"
#include "net/dispatcher.h"
#include "net/network.h"
#include "net/reliable.h"
#include "net/spatial_grid.h"
#include "net/topology.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace iobt::net {
namespace {

using sim::Duration;
using sim::Rect;
using sim::Rng;
using sim::Simulator;
using sim::SimTime;
using sim::Vec2;

// ------------------------------------------------------------- Topology ----

TEST(Topology, AddRemoveEdges) {
  Topology t(4);
  t.add_edge(0, 1, 2.0);
  t.add_edge(1, 2);
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 0));  // undirected
  EXPECT_DOUBLE_EQ(*t.edge_weight(0, 1), 2.0);
  t.remove_edge(0, 1);
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_EQ(t.edge_count(), 1u);
  t.remove_edge(0, 3);  // absent: no-op
  EXPECT_EQ(t.edge_count(), 1u);
}

TEST(Topology, ParallelEdgeUpdatesWeight) {
  Topology t(2);
  t.add_edge(0, 1, 1.0);
  t.add_edge(0, 1, 5.0);
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(*t.edge_weight(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(*t.edge_weight(1, 0), 5.0);
}

TEST(Topology, SelfLoopIgnored) {
  Topology t(2);
  t.add_edge(1, 1);
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(Topology, AddEdgeOutOfRangeThrows) {
  Topology t(2);
  EXPECT_THROW(t.add_edge(0, 5), std::out_of_range);
}

TEST(Topology, ShortestPathsLine) {
  // 0 -1- 1 -1- 2 -1- 3, plus a heavy shortcut 0-3.
  Topology t(4);
  t.add_edge(0, 1, 1.0);
  t.add_edge(1, 2, 1.0);
  t.add_edge(2, 3, 1.0);
  t.add_edge(0, 3, 10.0);
  const auto sp = t.shortest_paths(0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 3.0);
  EXPECT_EQ(sp.path_to(3), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Topology, ShortestPathsUnreachable) {
  Topology t(3);
  t.add_edge(0, 1);
  const auto sp = t.shortest_paths(0);
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_TRUE(sp.path_to(2).empty());
  EXPECT_TRUE(sp.reachable(0));
  EXPECT_EQ(sp.path_to(0), (std::vector<NodeId>{0}));
}

TEST(Topology, HopDistances) {
  Topology t = Topology::ring(6);
  const auto d = t.hop_distances(0);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[5], 1);
}

TEST(Topology, ComponentsAndConnectivity) {
  Topology t(5);
  t.add_edge(0, 1);
  t.add_edge(2, 3);
  EXPECT_EQ(t.component_count(), 3);  // {0,1} {2,3} {4}
  EXPECT_FALSE(t.connected());
  t.add_edge(1, 2);
  t.add_edge(3, 4);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, MinimumSpanningForest) {
  Topology t(4);
  t.add_edge(0, 1, 1.0);
  t.add_edge(1, 2, 2.0);
  t.add_edge(0, 2, 10.0);
  t.add_edge(2, 3, 1.0);
  const auto mst = t.minimum_spanning_forest();
  ASSERT_EQ(mst.size(), 3u);
  double total = 0;
  for (const auto& e : mst) total += e.weight;
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(Topology, GeneratorShapes) {
  EXPECT_EQ(Topology::ring(5).edge_count(), 5u);
  EXPECT_EQ(Topology::star(5).edge_count(), 4u);
  EXPECT_EQ(Topology::star(5).degree(0), 4u);
  const auto g = Topology::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3u + 2u * 4u);  // vertical + horizontal
  EXPECT_TRUE(g.connected());
}

TEST(Topology, HierarchicalGenerator) {
  const auto t = Topology::hierarchical(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_TRUE(t.connected());
  // Cluster heads (0, 4, 8) form a mesh.
  EXPECT_TRUE(t.has_edge(0, 4));
  EXPECT_TRUE(t.has_edge(4, 8));
  // Non-heads of different clusters are not directly linked.
  EXPECT_FALSE(t.has_edge(1, 5));
}

TEST(Topology, RandomGeometricRespectsRadius) {
  Rng rng(1);
  std::vector<Vec2> pos;
  const auto t = Topology::random_geometric(50, Rect{{0, 0}, {1000, 1000}}, 200.0, rng, &pos);
  ASSERT_EQ(pos.size(), 50u);
  for (const auto& e : t.edges()) {
    EXPECT_LE(sim::distance(pos[e.a], pos[e.b]), 200.0 + 1e-9);
    EXPECT_NEAR(e.weight, sim::distance(pos[e.a], pos[e.b]), 1e-9);
  }
}

TEST(Topology, KNearestMinimumDegree) {
  Rng rng(2);
  std::vector<Vec2> pos(20);
  for (auto& p : pos) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
  const auto t = Topology::k_nearest(pos, 3);
  for (NodeId v = 0; v < 20; ++v) EXPECT_GE(t.degree(v), 3u);
}

TEST(Topology, ErdosRenyiEdgeCountNearExpectation) {
  Rng rng(3);
  const std::size_t n = 100;
  const double p = 0.1;
  const auto t = Topology::erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(t.edge_count()), expected, expected * 0.25);
}

// -------------------------------------------------------------- Channel ----

TEST(Channel, InRangeUsesMinOfRanges) {
  ChannelModel ch;
  RadioProfile big{.range_m = 500};
  RadioProfile small{.range_m = 100};
  EXPECT_TRUE(ch.in_range({0, 0}, big, {90, 0}, small));
  EXPECT_FALSE(ch.in_range({0, 0}, big, {150, 0}, small));
}

TEST(Channel, LossGrowsWithDistance) {
  ChannelModel ch;
  RadioProfile r{.range_m = 100, .base_loss = 0.01};
  const double near = ch.loss_probability({0, 0}, r, {10, 0}, r, SimTime::zero());
  const double far = ch.loss_probability({0, 0}, r, {95, 0}, r, SimTime::zero());
  EXPECT_LT(near, far);
  EXPECT_GE(near, 0.01);
  const double out = ch.loss_probability({0, 0}, r, {150, 0}, r, SimTime::zero());
  EXPECT_DOUBLE_EQ(out, 1.0);
}

TEST(Channel, JammerRaisesLossWhileActive) {
  ChannelModel ch;
  ch.add_jammer({.center = {0, 0},
                 .radius_m = 50,
                 .start = SimTime::seconds(10),
                 .end = SimTime::seconds(20),
                 .induced_loss = 0.99});
  RadioProfile r{.range_m = 100, .base_loss = 0.01};
  const double before = ch.loss_probability({0, 0}, r, {10, 0}, r, SimTime::seconds(5));
  const double during = ch.loss_probability({0, 0}, r, {10, 0}, r, SimTime::seconds(15));
  const double after = ch.loss_probability({0, 0}, r, {10, 0}, r, SimTime::seconds(25));
  EXPECT_LT(before, 0.1);
  EXPECT_DOUBLE_EQ(during, 0.99);
  EXPECT_LT(after, 0.1);
}

TEST(Channel, TransmissionDelayScalesWithSize) {
  RadioProfile r{.data_rate_bps = 1e6};
  EXPECT_EQ(ChannelModel::transmission_delay(r, 125000).nanos(),
            Duration::seconds(1.0).nanos());
}

// -------------------------------------------------------------- Network ----

struct NetFixture : ::testing::Test {
  Simulator sim;
  ChannelModel clean_channel{2.0, 0.0};  // no edge loss for determinism
  Network net{sim, clean_channel, Rng(99)};

  NodeId add(Vec2 p, double range = 300.0, double base_loss = 0.0) {
    return net.add_node(p, RadioProfile{.range_m = range,
                                        .data_rate_bps = 1e6,
                                        .base_loss = base_loss});
  }
};

TEST_F(NetFixture, UnicastDelivers) {
  const NodeId a = add({0, 0}), b = add({100, 0});
  int got = 0;
  net.set_handler(b, [&](const Message& m) {
    ++got;
    EXPECT_EQ(m.kind, "ping");
    EXPECT_EQ(m.src, a);
    EXPECT_EQ(m.hops, 1);
  });
  EXPECT_TRUE(net.send(a, b, Message{.kind = "ping", .size_bytes = 100}));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, DeliveryLatencyIncludesTransmissionAndHop) {
  const NodeId a = add({0, 0}), b = add({100, 0});
  SimTime arrival;
  net.set_handler(b, [&](const Message&) { arrival = sim.now(); });
  // 125000 bytes at 1 Mbps = 1 s + 1 ms hop latency.
  net.send(a, b, Message{.kind = "blob", .size_bytes = 125000});
  sim.run();
  EXPECT_EQ(arrival.nanos(), (SimTime::seconds(1.0) + Duration::millis(1)).nanos());
}

TEST_F(NetFixture, HalfDuplexSerializesFrames) {
  const NodeId a = add({0, 0}), b = add({100, 0});
  std::vector<SimTime> arrivals;
  net.set_handler(b, [&](const Message&) { arrivals.push_back(sim.now()); });
  net.send(a, b, Message{.kind = "x", .size_bytes = 125000});  // 1 s on air
  net.send(a, b, Message{.kind = "y", .size_bytes = 125000});
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame waits for the first to finish transmitting.
  EXPECT_EQ((arrivals[1] - arrivals[0]).nanos(), Duration::seconds(1.0).nanos());
}

TEST_F(NetFixture, OutOfRangeDropsAtSendTime) {
  const NodeId a = add({0, 0}, 100.0), b = add({500, 0}, 100.0);
  EXPECT_FALSE(net.send(a, b, Message{.kind = "p", .size_bytes = 10}));
  EXPECT_EQ(net.frames_dropped(), 1u);
}

TEST_F(NetFixture, DownNodeNeitherSendsNorReceives) {
  const NodeId a = add({0, 0}), b = add({100, 0});
  int got = 0;
  net.set_handler(b, [&](const Message&) { ++got; });
  net.set_node_up(b, false);
  EXPECT_FALSE(net.send(a, b, Message{.kind = "p", .size_bytes = 10}));
  net.set_node_up(b, true);
  net.set_node_up(a, false);
  EXPECT_FALSE(net.send(a, b, Message{.kind = "p", .size_bytes = 10}));
  sim.run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetFixture, BroadcastReachesOnlyNodesInRange) {
  const NodeId a = add({0, 0}, 150.0);
  const NodeId near1 = add({100, 0});
  const NodeId near2 = add({0, 120});
  const NodeId far = add({400, 0});
  int near_got = 0, far_got = 0;
  net.set_handler(near1, [&](const Message&) { ++near_got; });
  net.set_handler(near2, [&](const Message&) { ++near_got; });
  net.set_handler(far, [&](const Message&) { ++far_got; });
  EXPECT_EQ(net.broadcast(a, Message{.kind = "hello", .size_bytes = 10}), 2u);
  sim.run();
  EXPECT_EQ(near_got, 2);
  EXPECT_EQ(far_got, 0);
}

TEST_F(NetFixture, MultiHopRouting) {
  // Chain 0 - 1 - 2 - 3 with 200 m spacing, 300 m range.
  const NodeId n0 = add({0, 0}), n1 = add({200, 0}), n2 = add({400, 0}),
               n3 = add({600, 0});
  (void)n1;
  (void)n2;
  int got = 0;
  net.set_handler(n3, [&](const Message& m) {
    ++got;
    EXPECT_EQ(m.hops, 3);
    EXPECT_EQ(m.src, n0);
  });
  EXPECT_TRUE(net.route_exists(n0, n3));
  EXPECT_TRUE(net.route_and_send(n0, n3, Message{.kind = "data", .size_bytes = 50}));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, RouteFailsAcrossPartition) {
  const NodeId a = add({0, 0}, 100.0);
  const NodeId b = add({1000, 0}, 100.0);
  EXPECT_FALSE(net.route_exists(a, b));
  EXPECT_FALSE(net.route_and_send(a, b, Message{.kind = "p", .size_bytes = 10}));
}

TEST_F(NetFixture, RouteRecomputedAfterNodeFailure) {
  const NodeId n0 = add({0, 0}), relay = add({200, 0}), n2 = add({400, 0});
  EXPECT_TRUE(net.route_exists(n0, n2));
  net.set_node_up(relay, false);
  EXPECT_FALSE(net.route_exists(n0, n2));
  net.set_node_up(relay, true);
  EXPECT_TRUE(net.route_exists(n0, n2));
}

TEST_F(NetFixture, RouteRecomputedAfterMovement) {
  const NodeId a = add({0, 0}), b = add({1000, 0});
  EXPECT_FALSE(net.route_exists(a, b));
  net.set_position(b, {250, 0});
  EXPECT_TRUE(net.route_exists(a, b));
}

TEST_F(NetFixture, SelfSendDeliversLocally) {
  const NodeId a = add({0, 0});
  int got = 0;
  net.set_handler(a, [&](const Message& m) {
    ++got;
    EXPECT_EQ(m.hops, 0);
  });
  EXPECT_TRUE(net.route_and_send(a, a, Message{.kind = "self", .size_bytes = 1}));
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, RouteAndSendToDownSelfDropsInsteadOfDelivering) {
  // Regression: the src == dst fast path used to invoke the handler even
  // when the node was DOWN — a dead radio delivered to itself.
  const NodeId a = add({0, 0});
  int got = 0;
  net.set_handler(a, [&](const Message&) { ++got; });
  net.set_node_up(a, false);
  EXPECT_FALSE(net.route_and_send(a, a, Message{.kind = "self", .size_bytes = 1}));
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.frames_dropped(), 1u);
  EXPECT_EQ(net.metrics().counter("net.drop.node_down"), 1.0);
  // Back up: local delivery works again.
  net.set_node_up(a, true);
  EXPECT_TRUE(net.route_and_send(a, a, Message{.kind = "self", .size_bytes = 1}));
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, RouteAndSendUnknownIdsDropInsteadOfThrowing) {
  // Regression: out-of-range src/dst used to throw std::out_of_range from
  // the slab .at() while route_exists returned false for the same ids.
  const NodeId a = add({0, 0});
  const NodeId ghost = 57;
  EXPECT_FALSE(net.route_exists(a, ghost));
  EXPECT_FALSE(net.route_exists(ghost, a));
  EXPECT_NO_THROW({
    EXPECT_FALSE(net.route_and_send(a, ghost, Message{.kind = "m", .size_bytes = 1}));
    EXPECT_FALSE(net.route_and_send(ghost, a, Message{.kind = "m", .size_bytes = 1}));
    EXPECT_FALSE(net.route_and_send(ghost, ghost, Message{.kind = "m", .size_bytes = 1}));
  });
  EXPECT_EQ(net.frames_dropped(), 3u);
  EXPECT_EQ(net.metrics().counter("net.drop.no_route"), 3.0);
}

namespace {

void expect_identical_topologies(const Topology& got, const Topology& want,
                                 const char* what) {
  ASSERT_EQ(got.node_count(), want.node_count()) << what;
  ASSERT_EQ(got.edge_count(), want.edge_count()) << what;
  for (NodeId v = 0; v < want.node_count(); ++v) {
    const auto& gn = got.neighbors(v);
    const auto& wn = want.neighbors(v);
    ASSERT_EQ(gn.size(), wn.size()) << what << " node " << v;
    for (std::size_t i = 0; i < wn.size(); ++i) {
      // Bit-identical: same neighbor order (Dijkstra tie-breaks) and the
      // exact same FP weight.
      EXPECT_EQ(gn[i].id, wn[i].id) << what << " node " << v << " slot " << i;
      EXPECT_EQ(gn[i].weight, wn[i].weight) << what << " node " << v << " slot " << i;
    }
  }
}

/// Drives `mutate(net)` over incremental / rebuild / brute substrates fed
/// the identical op sequence and checks topology + epoch identity.
template <typename Mutate>
void run_maintenance_equivalence(Mutate mutate) {
  Simulator sim_inc, sim_reb, sim_brute;
  Network inc{sim_inc, ChannelModel(2.0, 0.0), Rng(7)};
  Network reb{sim_reb, ChannelModel(2.0, 0.0), Rng(7)};
  Network brute{sim_brute, ChannelModel(2.0, 0.0), Rng(7)};
  reb.set_incremental_connectivity_enabled(false);
  brute.set_incremental_connectivity_enabled(false);
  brute.set_spatial_index_enabled(false);
  Rng ops(0xC0FFEE);
  const auto step = [&](Network& n) {
    Rng r = ops;  // each substrate consumes an identical private copy
    mutate(n, r);
  };
  for (int round = 0; round < 60; ++round) {
    step(inc);
    step(reb);
    step(brute);
    ops = ops.child(round);
    ASSERT_EQ(inc.topology_epoch(), reb.topology_epoch()) << "round " << round;
    ASSERT_EQ(inc.topology_epoch(), brute.topology_epoch()) << "round " << round;
    const Topology want = reb.connectivity();
    expect_identical_topologies(inc.connectivity(), want, "inc vs rebuild");
    expect_identical_topologies(inc.topology_view(), want, "view vs rebuild");
    expect_identical_topologies(brute.connectivity(), want, "brute vs rebuild");
  }
}

}  // namespace

TEST(NetworkIncremental, StoreMatchesRebuildUnderMoveChurn) {
  run_maintenance_equivalence([](Network& n, Rng& r) {
    if (n.node_count() < 30) {
      n.add_node({r.uniform(0, 1000), r.uniform(0, 1000)},
                 RadioProfile{.range_m = 220.0, .data_rate_bps = 1e6});
      return;
    }
    const auto id = static_cast<NodeId>(r.uniform_int(0, static_cast<std::int64_t>(n.node_count()) - 1));
    n.set_position(id, {r.uniform(0, 1000), r.uniform(0, 1000)});
  });
}

TEST(NetworkIncremental, StoreMatchesRebuildUnderLivenessChurnAndGrowth) {
  run_maintenance_equivalence([](Network& n, Rng& r) {
    const double roll = r.uniform(0.0, 1.0);
    if (n.node_count() < 12 || roll < 0.2) {
      // Growing ranges force grid rebuilds mid-churn; the store must ride
      // through them untouched.
      n.add_node({r.uniform(0, 800), r.uniform(0, 800)},
                 RadioProfile{.range_m = r.uniform(120.0, 320.0),
                              .data_rate_bps = 1e6});
    } else if (roll < 0.6) {
      const auto id = static_cast<NodeId>(r.uniform_int(0, static_cast<std::int64_t>(n.node_count()) - 1));
      n.set_node_up(id, !n.node_up(id));
    } else {
      const auto id = static_cast<NodeId>(r.uniform_int(0, static_cast<std::int64_t>(n.node_count()) - 1));
      // Down nodes reposition silently; the store must ignore them until
      // they come back up.
      n.set_position(id, {r.uniform(0, 800), r.uniform(0, 800)});
    }
  });
}

TEST_F(NetFixture, IncrementalToggleMidRunSeedsAndReleasesStore) {
  Rng r(5);
  for (int i = 0; i < 20; ++i) add({r.uniform(0, 500), r.uniform(0, 500)});
  net.set_incremental_connectivity_enabled(false);
  EXPECT_FALSE(net.incremental_connectivity_enabled());
  for (int i = 0; i < 10; ++i) {
    net.set_position(static_cast<NodeId>(i), {r.uniform(0, 500), r.uniform(0, 500)});
  }
  const Topology baseline = net.connectivity();
  // Enabling mid-run seeds the store with one full rebuild.
  net.set_incremental_connectivity_enabled(true);
  expect_identical_topologies(net.connectivity(), baseline, "after enable");
  // And it tracks further churn.
  net.set_node_up(3, false);
  net.set_position(7, {r.uniform(0, 500), r.uniform(0, 500)});
  net.set_incremental_connectivity_enabled(false);
  const Topology want = net.connectivity();
  net.set_incremental_connectivity_enabled(true);
  expect_identical_topologies(net.connectivity(), want, "after churn");
}

TEST_F(NetFixture, MemoryFootprintTracksNodeCount) {
  const auto before = net.memory_footprint();
  Rng r(9);
  for (int i = 0; i < 64; ++i) add({r.uniform(0, 2000), r.uniform(0, 2000)});
  const auto after = net.memory_footprint();
  EXPECT_GT(after.node_slabs, before.node_slabs);
  EXPECT_GT(after.grid, 0u);
  EXPECT_GT(after.links, 0u);
  EXPECT_EQ(after.total(), after.node_slabs + after.grid + after.links +
                               after.route_cache + after.pending);
}

TEST_F(NetFixture, ConnectivitySnapshotMatchesRanges) {
  add({0, 0});
  add({100, 0});
  add({1000, 1000});
  const Topology t = net.connectivity();
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_FALSE(t.has_edge(0, 2));
}

TEST_F(NetFixture, TransmitHookAndByteAccounting) {
  const NodeId a = add({0, 0}), b = add({100, 0});
  std::size_t hook_bytes = 0;
  net.set_transmit_hook([&](NodeId n, std::size_t bytes) {
    EXPECT_EQ(n, a);
    hook_bytes += bytes;
  });
  net.send(a, b, Message{.kind = "p", .size_bytes = 77});
  sim.run();
  EXPECT_EQ(hook_bytes, 77u);
  EXPECT_EQ(net.bytes_sent(a), 77u);
  EXPECT_EQ(net.total_bytes_sent(), 77u);
}

TEST(NetworkLoss, LossyChannelDropsSomeFrames) {
  Simulator sim;
  ChannelModel lossy(2.0, 0.0);
  Network net(sim, lossy, Rng(7));
  const NodeId a = net.add_node({0, 0}, {.range_m = 300, .data_rate_bps = 1e6,
                                         .base_loss = 0.5});
  const NodeId b = net.add_node({10, 0}, {.range_m = 300, .data_rate_bps = 1e6,
                                          .base_loss = 0.5});
  int got = 0;
  net.set_handler(b, [&](const Message&) { ++got; });
  const int sent = 1000;
  for (int i = 0; i < sent; ++i) net.send(a, b, Message{.kind = "p", .size_bytes = 10});
  sim.run();
  EXPECT_GT(got, 300);
  EXPECT_LT(got, 700);
  EXPECT_EQ(net.frames_dropped(), static_cast<std::uint64_t>(sent - got));
}

TEST(NetworkJam, JammingBlocksTrafficDuringWindow) {
  Simulator sim;
  ChannelModel ch(2.0, 0.0);
  ch.add_jammer({.center = {0, 0},
                 .radius_m = 500,
                 .start = SimTime::seconds(10),
                 .end = SimTime::seconds(20),
                 .induced_loss = 1.0});
  Network net(sim, ch, Rng(7));
  const NodeId a = net.add_node({0, 0}, {.range_m = 300, .base_loss = 0.0});
  const NodeId b = net.add_node({100, 0}, {.range_m = 300, .base_loss = 0.0});
  int got = 0;
  net.set_handler(b, [&](const Message&) { ++got; });

  // One frame per second for 30 s.
  for (int t = 0; t < 30; ++t) {
    sim.schedule_at(SimTime::seconds(t), [&net, a, b] {
      net.send(a, b, Message{.kind = "p", .size_bytes = 10});
    });
  }
  sim.run();
  EXPECT_EQ(got, 20);  // the 10 frames inside [10, 20) are jammed
}


// ------------------------------------------------------ Urban occlusion ----

TEST(Channel, BuildingBlocksLineOfSight) {
  ChannelModel ch(2.0, 0.0);
  ch.add_building({{40, -10}, {60, 10}});  // wall between x=40..60
  RadioProfile r{.range_m = 300, .base_loss = 0.0};
  EXPECT_FALSE(ch.in_range({0, 0}, r, {100, 0}, r));  // LoS crosses the wall
  EXPECT_TRUE(ch.in_range({0, 0}, r, {100, 50}, r));  // path above the wall
  EXPECT_DOUBLE_EQ(ch.loss_probability({0, 0}, r, {100, 0}, r, SimTime::zero()),
                   1.0);
}

TEST(Channel, EndpointInsideBuildingIsBlocked) {
  ChannelModel ch(2.0, 0.0);
  ch.add_building({{40, -10}, {60, 10}});
  EXPECT_TRUE(ch.line_of_sight_blocked({50, 0}, {200, 0}));
}

TEST(NetworkUrban, RoutingBendsAroundBuilding) {
  Simulator sim;
  ChannelModel ch(2.0, 0.0);
  // A wall splits the direct corridor; a relay sits above it.
  ch.add_building({{90, -50}, {110, 50}});
  Network net(sim, ch, Rng(5));
  const NodeId a = net.add_node({0, 0}, {.range_m = 160, .base_loss = 0.0});
  const NodeId b = net.add_node({200, 0}, {.range_m = 160, .base_loss = 0.0});
  const NodeId relay = net.add_node({100, 120}, {.range_m = 160, .base_loss = 0.0});
  EXPECT_FALSE(net.connectivity().has_edge(a, b));  // wall blocks direct link
  ASSERT_TRUE(net.route_exists(a, b));              // but the relay sees over
  int got_hops = -1;
  net.set_handler(b, [&](const Message& m) { got_hops = m.hops; });
  ASSERT_TRUE(net.route_and_send(a, b, Message{.kind = "p", .size_bytes = 8}));
  sim.run();
  EXPECT_EQ(got_hops, 2);
  (void)relay;
}

TEST(Geometry, SegmentRectIntersection) {
  const sim::Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(sim::segment_intersects_rect({-5, 5}, {15, 5}, r));   // through
  EXPECT_TRUE(sim::segment_intersects_rect({5, 5}, {20, 20}, r));   // from inside
  EXPECT_FALSE(sim::segment_intersects_rect({-5, 15}, {15, 15}, r)); // above
  EXPECT_FALSE(sim::segment_intersects_rect({-5, -5}, {-1, 15}, r)); // left of
  EXPECT_TRUE(sim::segment_intersects_rect({-5, -5}, {5, 25}, r));   // clips corner area
}


// ----------------------------------------------------------- Dispatcher ----

TEST(Dispatcher, RoutesByKindAndSupportsOffAndDefault) {
  Simulator sim;
  Network net(sim, ChannelModel(2.0, 0.0), Rng(3));
  const NodeId a = net.add_node({0, 0}, {.range_m = 300, .base_loss = 0.0});
  const NodeId b = net.add_node({100, 0}, {.range_m = 300, .base_loss = 0.0});
  Dispatcher disp(net);
  int pings = 0, pongs = 0, unrouted = 0;
  disp.on(b, "ping", [&](const Message&) { ++pings; });
  disp.on(b, "pong", [&](const Message&) { ++pongs; });
  disp.set_default([&](const Message&) { ++unrouted; });

  net.send(a, b, Message{.kind = "ping", .size_bytes = 8});
  net.send(a, b, Message{.kind = "pong", .size_bytes = 8});
  net.send(a, b, Message{.kind = "mystery", .size_bytes = 8});
  sim.run();
  EXPECT_EQ(pings, 1);
  EXPECT_EQ(pongs, 1);
  EXPECT_EQ(unrouted, 1);

  disp.off(b, "ping");
  net.send(a, b, Message{.kind = "ping", .size_bytes = 8});
  sim.run();
  EXPECT_EQ(pings, 1);     // handler removed
  EXPECT_EQ(unrouted, 2);  // falls through to default
}

TEST(Dispatcher, ReplacingHandlerTakesEffect) {
  Simulator sim;
  Network net(sim, ChannelModel(2.0, 0.0), Rng(3));
  const NodeId a = net.add_node({0, 0}, {.range_m = 300, .base_loss = 0.0});
  const NodeId b = net.add_node({100, 0}, {.range_m = 300, .base_loss = 0.0});
  Dispatcher disp(net);
  int first = 0, second = 0;
  disp.on(b, "k", [&](const Message&) { ++first; });
  disp.on(b, "k", [&](const Message&) { ++second; });
  net.send(a, b, Message{.kind = "k", .size_bytes = 8});
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

// ------------------------------------------------------------- Reliable ----

struct ReliableFixture : ::testing::Test {
  Simulator sim;
  ChannelModel lossy{2.0, 0.0};
  std::unique_ptr<Network> net;
  std::unique_ptr<Dispatcher> disp;
  std::unique_ptr<ReliableChannel> rel;
  NodeId a = 0, b = 0;

  void init(double base_loss, ReliableConfig cfg = {}) {
    net = std::make_unique<Network>(sim, lossy, Rng(11));
    a = net->add_node({0, 0}, {.range_m = 300, .data_rate_bps = 1e6,
                               .base_loss = base_loss});
    b = net->add_node({100, 0}, {.range_m = 300, .data_rate_bps = 1e6,
                                 .base_loss = base_loss});
    disp = std::make_unique<Dispatcher>(*net);
    rel = std::make_unique<ReliableChannel>(sim, *disp, "rel", cfg);
  }
};

TEST_F(ReliableFixture, DeliversOnCleanChannel) {
  init(0.0);
  int got = 0;
  bool result = false;
  rel->listen(b, [&](const Message& m) {
    ++got;
    EXPECT_EQ(m.kind, "order");
  });
  rel->send(a, b, Message{.kind = "order", .size_bytes = 64},
            [&](bool ok) { result = ok; });
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(result);
  EXPECT_EQ(rel->retransmissions(), 0u);
}

TEST_F(ReliableFixture, RetransmitsThroughLossAndDeliversOnce) {
  init(0.4);  // 40% per-frame loss: raw delivery would be a coin flip
  int got = 0;
  int succeeded = 0, failed_cb = 0;
  rel->listen(b, [&](const Message&) { ++got; });
  const int sent = 50;
  for (int i = 0; i < sent; ++i) {
    rel->send(a, b, Message{.kind = "d", .size_bytes = 32},
              [&](bool ok) { ok ? ++succeeded : ++failed_cb; });
  }
  sim.run();
  // With 4 attempts at ~0.36 round-trip success each, nearly all succeed.
  EXPECT_GT(succeeded, 40);
  // The application sees each message at most once (dedup), and sees at
  // least every acked one; a message may arrive while its ACKs all die,
  // so `got` can exceed `succeeded` — that is the at-least-once residue.
  EXPECT_GE(got, succeeded);
  EXPECT_LE(got, sent);
  EXPECT_EQ(succeeded + failed_cb, sent);
  EXPECT_GT(rel->retransmissions(), 0u);
}

TEST_F(ReliableFixture, TracesTransferLifecycleAndRetransmits) {
  init(0.4);
  sim.tracer().enable(1u << 14);
  int succeeded = 0, failed_cb = 0;
  rel->listen(b, [&](const Message&) {});
  for (int i = 0; i < 30; ++i) {
    rel->send(a, b, Message{.kind = "d", .size_bytes = 32},
              [&](bool ok) { ok ? ++succeeded : ++failed_cb; });
  }
  sim.run();
  sim.tracer().disable();
  ASSERT_GT(rel->retransmissions(), 0u);

  std::size_t xfer_begins = 0, xfer_ends = 0, retx_instants = 0;
  double last_retx_counter = 0.0, prev = -1.0;
  bool counters_monotone = true;
  for (const auto& r : sim.tracer().snapshot()) {
    const std::string& name = sim.tracer().name(r.name);
    if (name == "rel.xfer") {
      (r.phase == trace::Phase::kAsyncBegin ? xfer_begins : xfer_ends) += 1;
    } else if (name == "rel.retransmit") {
      ++retx_instants;
    } else if (name == "rel.retransmissions") {
      // Cumulative counter track: must never decrease.
      counters_monotone &= r.value >= prev;
      prev = last_retx_counter = r.value;
    }
  }
  // Every transfer span opened also closed (ACK or final failure).
  EXPECT_EQ(xfer_begins, 30u);
  EXPECT_EQ(xfer_ends, 30u);
  EXPECT_EQ(retx_instants, rel->retransmissions());
  EXPECT_TRUE(counters_monotone);
  EXPECT_DOUBLE_EQ(last_retx_counter,
                   static_cast<double>(rel->retransmissions()));
  // The net category is what Perfetto filters on.
  EXPECT_EQ(sim.tracer().category(sim.tracer().intern("rel.xfer")), "net");
}

TEST_F(ReliableFixture, ReportsFailureWhenPeerUnreachable) {
  init(0.0);
  net->set_node_up(b, false);
  bool result = true;
  rel->send(a, b, Message{.kind = "d", .size_bytes = 8},
            [&](bool ok) { result = ok; });
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(rel->failed(), 1u);
}

TEST_F(ReliableFixture, DuplicateDataFramesAreSuppressed) {
  // Force duplicate delivery by making the ACK path lossy only: simulate
  // by sending the same payload twice from the app level with clean
  // channel — the channel dedups by sequence, so two sends = two
  // deliveries (distinct seqs), while retransmits of one seq = one.
  init(0.0, {.rto = sim::Duration::seconds(1.0), .max_attempts = 3});
  int got = 0;
  rel->listen(b, [&](const Message&) { ++got; });
  rel->send(a, b, Message{.kind = "d", .size_bytes = 8});
  rel->send(a, b, Message{.kind = "d", .size_bytes = 8});
  sim.run();
  EXPECT_EQ(got, 2);
}

TEST_F(ReliableFixture, RtoTimersCancelledOnAckSoRunQuiesces) {
  // Regression: the RTO timer must be cancelled when the ACK arrives.
  // Before the fix, run() ground through one dead retransmit timer per
  // message, dragging virtual time out to the RTO horizon.
  init(0.0);  // clean channel: every message acks on the first attempt
  int got = 0;
  rel->listen(b, [&](const Message&) { ++got; });
  const int sent = 1000;
  int succeeded = 0;
  for (int i = 0; i < sent; ++i) {
    rel->send(a, b, Message{.kind = "d", .size_bytes = 16},
              [&](bool ok) { succeeded += ok ? 1 : 0; });
  }
  sim.run();
  EXPECT_EQ(got, sent);
  EXPECT_EQ(succeeded, sent);
  EXPECT_EQ(rel->acked(), static_cast<std::size_t>(sent));
  // No transfer left pending, no timer left in the simulator.
  EXPECT_EQ(rel->pending_count(), 0u);
  EXPECT_EQ(sim.pending_count(), 0u);
  // Prompt quiescence: the clock stops when the last ACK lands, well
  // before the 2s RTO that leaked timers used to drag the run out to.
  EXPECT_LT(sim.now(), SimTime::seconds(2.0));
}

TEST_F(ReliableFixture, AckEndpointInstalledOncePerSource) {
  init(0.0);
  rel->listen(b, [](const Message&) {});
  for (int i = 0; i < 100; ++i) {
    rel->send(a, b, Message{.kind = "d", .size_bytes = 8});
  }
  sim.run();
  EXPECT_EQ(rel->ack_endpoints_installed(), 1u);
}

TEST_F(ReliableFixture, DedupWindowCompactsInOrderTraffic) {
  init(0.0);
  int got = 0;
  rel->listen(b, [&](const Message&) { ++got; });
  const int sent = 500;
  for (int i = 0; i < sent; ++i) {
    rel->send(a, b, Message{.kind = "d", .size_bytes = 8});
  }
  sim.run();
  EXPECT_EQ(got, sent);
  // In-order delivery: the window is pure base advancement, no sparse tail.
  EXPECT_EQ(rel->dedup_tail_entries(), 0u);
}

TEST_F(ReliableFixture, DedupTailStaysBoundedUnderLoss) {
  init(0.4);
  int got = 0;
  rel->listen(b, [&](const Message&) { ++got; });
  const int sent = 50;
  for (int i = 0; i < sent; ++i) {
    rel->send(a, b, Message{.kind = "d", .size_bytes = 8});
  }
  sim.run();
  // Failed transfers leave holes in the flow-seq space, but each data frame
  // advertises the sender's low watermark, so the receiver forgets abandoned
  // holes instead of parking every later seq in the sparse tail forever.
  // The residual tail is bounded by the transfers still unresolved when the
  // last-arriving frame was sent — far below the total volume.
  EXPECT_LE(rel->dedup_tail_entries(), static_cast<std::size_t>(sent) / 4);
  EXPECT_EQ(rel->pending_count(), 0u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SeqWindow, InsertDedupsAndCompacts) {
  SeqWindow w;
  EXPECT_TRUE(w.insert(1));
  EXPECT_FALSE(w.insert(1));  // duplicate
  EXPECT_EQ(w.base(), 1u);
  EXPECT_EQ(w.tail_size(), 0u);
  EXPECT_TRUE(w.insert(3));  // out of order: parked in the tail
  EXPECT_EQ(w.base(), 1u);
  EXPECT_EQ(w.tail_size(), 1u);
  EXPECT_FALSE(w.insert(3));
  EXPECT_TRUE(w.insert(2));  // fills the hole: base sweeps through the tail
  EXPECT_EQ(w.base(), 3u);
  EXPECT_EQ(w.tail_size(), 0u);
  EXPECT_FALSE(w.insert(2));  // below base: duplicate
}

TEST(SeqWindow, AdvanceToForgetsAbandonedHoles) {
  SeqWindow w;
  EXPECT_TRUE(w.insert(2));
  EXPECT_TRUE(w.insert(4));  // holes at 1 and 3
  EXPECT_EQ(w.base(), 0u);
  EXPECT_EQ(w.tail_size(), 2u);
  w.advance_to(3);  // sender abandoned 1 and 3: forget the holes
  EXPECT_EQ(w.base(), 4u);  // ...and 4 compacts into the base
  EXPECT_EQ(w.tail_size(), 0u);
  EXPECT_FALSE(w.insert(1));  // a straggler frame of an abandoned seq: dropped
  w.advance_to(2);  // stale watermark: no-op
  EXPECT_EQ(w.base(), 4u);
}

// Determinism: identical seeds => identical delivery counts, even with loss.
class NetDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetDeterminism, SameSeedSameOutcome) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Network net(sim, ChannelModel(), Rng(seed));
    std::vector<NodeId> ids;
    Rng layout(123);
    for (int i = 0; i < 30; ++i) {
      ids.push_back(net.add_node({layout.uniform(0, 500), layout.uniform(0, 500)},
                                 {.range_m = 200, .base_loss = 0.2}));
    }
    int got = 0;
    for (auto id : ids) net.set_handler(id, [&](const Message&) { ++got; });
    for (int i = 0; i < 100; ++i) {
      net.send(ids[static_cast<std::size_t>(i) % ids.size()],
               ids[static_cast<std::size_t>(i * 7 + 1) % ids.size()],
               Message{.kind = "p", .size_bytes = 20});
    }
    sim.run();
    return got;
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetDeterminism, ::testing::Values(1ULL, 7ULL, 1234ULL));

// ---------------------------------------------------------- SpatialGrid ----

TEST(SpatialGrid, NeighborhoodIsSupersetOfRadioDisc) {
  SpatialGrid grid(250.0);
  Rng rng(7);
  std::vector<Vec2> pts;
  for (NodeId i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0, 2000), rng.uniform(0, 2000)});
    grid.insert(i, pts.back());
  }
  std::vector<NodeId> out;
  for (NodeId q = 0; q < 300; q += 17) {
    out.clear();
    grid.neighborhood(pts[q], out);
    std::sort(out.begin(), out.end());
    for (NodeId i = 0; i < 300; ++i) {
      if (sim::distance(pts[q], pts[i]) <= 250.0) {
        EXPECT_TRUE(std::binary_search(out.begin(), out.end(), i))
            << "node " << i << " within range of " << q << " but not in neighborhood";
      }
    }
  }
}

TEST(SpatialGrid, MoveTracksCellMembership) {
  SpatialGrid grid(100.0);
  grid.insert(0, {10, 10});
  grid.insert(1, {50, 50});
  std::vector<NodeId> out;
  grid.neighborhood({10, 10}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<NodeId>{0, 1}));

  // Move across cells: the id leaves the old neighborhood, joins the new.
  grid.move(1, {50, 50}, {950, 950});
  out.clear();
  grid.neighborhood({10, 10}, out);
  EXPECT_EQ(out, (std::vector<NodeId>{0}));
  out.clear();
  grid.neighborhood({950, 950}, out);
  EXPECT_EQ(out, (std::vector<NodeId>{1}));

  // Within-cell move: membership unchanged.
  grid.move(0, {10, 10}, {90, 90});
  out.clear();
  grid.neighborhood({10, 10}, out);
  EXPECT_EQ(out, (std::vector<NodeId>{0}));

  grid.remove(0, {90, 90});
  out.clear();
  grid.neighborhood({10, 10}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(grid.size(), 1u);
}

TEST(SpatialGrid, SortedNeighborhoodMemoFollowsMutations) {
  SpatialGrid grid(100.0);
  grid.insert(2, {10, 10});
  grid.insert(0, {150, 150});
  grid.insert(1, {50, 50});
  EXPECT_EQ(grid.neighborhood_sorted({10, 10}), (std::vector<NodeId>{0, 1, 2}));
  // Repeat query is served from the memo and stays correct.
  EXPECT_EQ(grid.neighborhood_sorted({10, 10}), (std::vector<NodeId>{0, 1, 2}));

  grid.insert(3, {20, 20});  // membership change invalidates the memo
  EXPECT_EQ(grid.neighborhood_sorted({10, 10}), (std::vector<NodeId>{0, 1, 2, 3}));

  grid.remove(1, {50, 50});
  EXPECT_EQ(grid.neighborhood_sorted({10, 10}), (std::vector<NodeId>{0, 2, 3}));

  grid.move(2, {10, 10}, {90, 90});  // within-cell: list unchanged
  EXPECT_EQ(grid.neighborhood_sorted({10, 10}), (std::vector<NodeId>{0, 2, 3}));

  grid.move(0, {150, 150}, {950, 950});  // crosses cells: drops out
  EXPECT_EQ(grid.neighborhood_sorted({10, 10}), (std::vector<NodeId>{2, 3}));

  grid.reset(50.0);
  EXPECT_TRUE(grid.neighborhood_sorted({10, 10}).empty());
}

TEST(SpatialGrid, RingsPartitionTheNeighborhood) {
  SpatialGrid grid(100.0);
  Rng rng(11);
  std::vector<Vec2> pts;
  for (NodeId i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0, 500), rng.uniform(0, 500)});
    grid.insert(i, pts.back());
  }
  // ring(0) + ring(1) == the 3x3 neighborhood, with no id in both rings.
  const Vec2 q{250, 250};
  std::vector<NodeId> rings, hood;
  grid.ring(q, 0, rings);
  const std::size_t inner = rings.size();
  grid.ring(q, 1, rings);
  grid.neighborhood(q, hood);
  std::sort(rings.begin(), rings.end());
  std::sort(hood.begin(), hood.end());
  EXPECT_EQ(rings, hood);
  EXPECT_EQ(std::unique(rings.begin(), rings.end()), rings.end());
  EXPECT_LE(inner, rings.size());
}

// ------------------------------------------------- Topology bulk build ----

TEST(Topology, BulkConstructorMatchesIncrementalBuild) {
  Rng rng(3);
  std::vector<Edge> list;
  std::set<std::pair<NodeId, NodeId>> seen;
  for (int i = 0; i < 200; ++i) {
    NodeId a = static_cast<NodeId>(rng.uniform_int(0, 39));
    NodeId b = static_cast<NodeId>(rng.uniform_int(0, 39));
    if (a == b) continue;
    if (!seen.insert({std::min(a, b), std::max(a, b)}).second) continue;
    list.push_back({a, b, rng.uniform(1, 10)});
  }
  Topology incremental(40);
  for (const Edge& e : list) incremental.add_edge_unique(e.a, e.b, e.weight);
  const Topology bulk(40, list);

  EXPECT_EQ(bulk.edge_count(), incremental.edge_count());
  for (NodeId v = 0; v < 40; ++v) {
    const auto& bn = bulk.neighbors(v);
    const auto& in = incremental.neighbors(v);
    ASSERT_EQ(bn.size(), in.size()) << "node " << v;
    for (std::size_t i = 0; i < bn.size(); ++i) {
      EXPECT_EQ(bn[i].id, in[i].id) << "node " << v << " slot " << i;
      EXPECT_DOUBLE_EQ(bn[i].weight, in[i].weight);
    }
  }
}

TEST(Topology, BulkConstructorSkipsSelfLoopsAndValidates) {
  const std::vector<Edge> ok{{0, 1, 1.0}, {2, 2, 5.0}, {1, 2, 2.0}};
  const Topology t(3, ok);
  EXPECT_EQ(t.edge_count(), 2u);  // the self-loop is ignored
  const std::vector<Edge> bad{{0, 7, 1.0}};
  EXPECT_THROW(Topology(3, bad), std::out_of_range);
}

TEST(Topology, RandomGeometricGridPathMatchesBruteReference) {
  // n = 200 is above the internal grid threshold, so this exercises the
  // grid path; the reference below is the documented O(n^2) rule applied
  // to the returned positions, in the same edge order.
  Rng rng(17);
  std::vector<Vec2> pos;
  const Rect area{{0, 0}, {1500, 1500}};
  const double radius = 180.0;
  const auto t = Topology::random_geometric(200, area, radius, rng, &pos);
  ASSERT_EQ(pos.size(), 200u);

  Topology ref(200);
  for (NodeId a = 0; a < 200; ++a) {
    for (NodeId b = a + 1; b < 200; ++b) {
      const double d2 = sim::distance2(pos[a], pos[b]);
      if (d2 <= radius * radius) ref.add_edge_unique(a, b, std::sqrt(d2));
    }
  }
  const auto te = t.edges();
  const auto re = ref.edges();
  ASSERT_EQ(te.size(), re.size());
  for (std::size_t i = 0; i < te.size(); ++i) {
    EXPECT_EQ(te[i].a, re[i].a);
    EXPECT_EQ(te[i].b, re[i].b);
    EXPECT_DOUBLE_EQ(te[i].weight, re[i].weight);
  }
}

TEST(Topology, KNearestGridPathMatchesBruteReference) {
  // n = 150 exercises the expanding-ring grid path; the reference is the
  // brute-force k-smallest-(distance, id) rule.
  Rng rng(23);
  std::vector<Vec2> pos;
  for (int i = 0; i < 150; ++i) pos.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  const std::size_t k = 4;
  const auto t = Topology::k_nearest(pos, k);

  Topology ref(pos.size());
  for (NodeId a = 0; a < pos.size(); ++a) {
    std::vector<std::pair<double, NodeId>> d;
    for (NodeId b = 0; b < pos.size(); ++b) {
      if (b != a) d.push_back({sim::distance(pos[a], pos[b]), b});
    }
    std::partial_sort(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(k), d.end());
    for (std::size_t i = 0; i < k; ++i) ref.add_edge(a, d[i].second, d[i].first);
  }
  EXPECT_EQ(t.edge_count(), ref.edge_count());
  const auto te = t.edges();
  const auto re = ref.edges();
  ASSERT_EQ(te.size(), re.size());
  for (std::size_t i = 0; i < te.size(); ++i) {
    EXPECT_EQ(te[i].a, re[i].a);
    EXPECT_EQ(te[i].b, re[i].b);
    EXPECT_DOUBLE_EQ(te[i].weight, re[i].weight);
  }
}

// ------------------------------------------- Spatial index equivalence ----

namespace {

/// A scattered population on one Network; used to compare grid and brute
/// enumeration on identical state.
std::vector<NodeId> scatter(Network& net, Rng& layout, int n, double range) {
  std::vector<NodeId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(net.add_node({layout.uniform(0, 2000), layout.uniform(0, 2000)},
                               RadioProfile{.range_m = range, .data_rate_bps = 1e6}));
  }
  return ids;
}

}  // namespace

TEST_F(NetFixture, ConnectivityIdenticalGridVsBrute) {
  Rng layout(41);
  scatter(net, layout, 150, 300.0);
  ASSERT_TRUE(net.spatial_index_enabled());
  const auto grid_edges = net.connectivity().edges();
  net.set_spatial_index_enabled(false);
  const auto brute_edges = net.connectivity().edges();
  ASSERT_EQ(grid_edges.size(), brute_edges.size());
  EXPECT_GT(grid_edges.size(), 0u);
  for (std::size_t i = 0; i < grid_edges.size(); ++i) {
    EXPECT_EQ(grid_edges[i].a, brute_edges[i].a);
    EXPECT_EQ(grid_edges[i].b, brute_edges[i].b);
    EXPECT_DOUBLE_EQ(grid_edges[i].weight, brute_edges[i].weight);
  }
}

TEST_F(NetFixture, NodesNearExactFilterIdenticalGridVsBrute) {
  Rng layout(43);
  scatter(net, layout, 150, 300.0);
  net.set_node_up(7, false);  // down nodes must be absent in both modes
  const auto filtered = [&](double radius, Vec2 q) {
    std::vector<NodeId> out;
    for (const NodeId id : net.nodes_near(q, radius)) {
      if (sim::distance(net.position(id), q) <= radius) out.push_back(id);
    }
    return out;
  };
  for (const Vec2 q : {Vec2{100, 100}, Vec2{1000, 1000}, Vec2{1999, 50}}) {
    for (const double r : {150.0, 400.0, 2500.0}) {
      net.set_spatial_index_enabled(true);
      const auto g = filtered(r, q);
      net.set_spatial_index_enabled(false);
      const auto b = filtered(r, q);
      EXPECT_EQ(g, b) << "q=(" << q.x << "," << q.y << ") r=" << r;
      // Ascending-id contract holds in both modes.
      EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
    }
  }
}

TEST_F(NetFixture, EpochOnlyBumpsWhenAnInRangeRelationshipChanges) {
  const NodeId a = add({0, 0});  // range 300
  const NodeId b = add({200, 0});
  const NodeId c = add({1500, 1500});
  (void)a;
  const std::uint64_t e0 = net.topology_epoch();

  // c is isolated: moving it around far from everyone changes nothing.
  net.set_position(c, {1400, 1500});
  EXPECT_EQ(net.topology_epoch(), e0);
  // b slides closer to a but gains/loses no link: still no bump.
  net.set_position(b, {100, 0});
  EXPECT_EQ(net.topology_epoch(), e0);
  // b leaves a's range: bump.
  net.set_position(b, {700, 0});
  EXPECT_GT(net.topology_epoch(), e0);

  const std::uint64_t e1 = net.topology_epoch();
  net.set_node_up(c, false);
  EXPECT_GT(net.topology_epoch(), e1);
  const std::uint64_t e2 = net.topology_epoch();
  add({900, 900});
  EXPECT_GT(net.topology_epoch(), e2);
}

TEST_F(NetFixture, LongRangeJoinRebuildsGridAndKeepsCoverage) {
  const NodeId a = add({0, 0});  // range 300 sets the initial cell size
  EXPECT_GE(net.spatial_grid().cell_size(), 300.0);
  const NodeId b = add({900, 0});  // 300 m radio, isolated for now
  EXPECT_EQ(net.broadcast(a, Message{.kind = "hello", .size_bytes = 8}), 0u);
  // A 1200 m radio joining must rebuild the grid (cells must cover the new
  // maximum range) and re-index the existing nodes. Links stay bounded by
  // the *smaller* radio on each pair, so big reaches only a for now.
  const NodeId big = add({100, 0}, 1200.0);
  EXPECT_GE(net.spatial_grid().cell_size(), 1200.0);
  int got = 0;
  for (const NodeId id : {a, b, big}) {
    net.set_handler(id, [&](const Message&) { ++got; });
  }
  EXPECT_EQ(net.broadcast(big, Message{.kind = "hello", .size_bytes = 8}), 1u);
  // A long-range peer lands in the rebuilt grid: its 830 m link to big is
  // visible, plus the short hop to b.
  const NodeId big2 = add({930, 0}, 1200.0);
  EXPECT_EQ(net.broadcast(big2, Message{.kind = "hello", .size_bytes = 8}), 2u);
  sim.run();
  EXPECT_EQ(got, 3);

  // The rebuilt index still agrees with brute force.
  const auto grid_edges = net.connectivity().edges();
  net.set_spatial_index_enabled(false);
  const auto brute_edges = net.connectivity().edges();
  ASSERT_EQ(grid_edges.size(), brute_edges.size());
  for (std::size_t i = 0; i < grid_edges.size(); ++i) {
    EXPECT_EQ(grid_edges[i].a, brute_edges[i].a);
    EXPECT_EQ(grid_edges[i].b, brute_edges[i].b);
  }
}

TEST_P(NetDeterminism, BroadcastDigestsIdenticalGridVsBrute) {
  // Lossy mobile scenario driven end-to-end twice — spatial index on and
  // off — from one seed. Every observable must match bit-for-bit: the RNG
  // draw order, delivery counts, and the full metrics digest.
  const auto run_once = [&](bool use_grid) {
    Simulator sim;
    Network net(sim, ChannelModel(), Rng(GetParam()));
    net.set_spatial_index_enabled(use_grid);
    Rng layout(GetParam() ^ 0x5EED);
    std::vector<NodeId> ids;
    for (int i = 0; i < 80; ++i) {
      ids.push_back(net.add_node({layout.uniform(0, 1200), layout.uniform(0, 1200)},
                                 {.range_m = 250, .base_loss = 0.15}));
    }
    std::uint64_t got = 0;
    for (auto id : ids) net.set_handler(id, [&](const Message&) { ++got; });
    for (int round = 0; round < 8; ++round) {
      for (auto id : ids) {
        net.set_position(id, {layout.uniform(0, 1200), layout.uniform(0, 1200)});
      }
      for (auto id : ids) net.broadcast(id, Message{.kind = "hello", .size_bytes = 24});
      sim.run();
    }
    return std::pair<std::uint64_t, std::uint64_t>{got, net.metrics().digest()};
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

// ------------------------------------------------------- Layered network ----

TEST(NetworkLayers, CrossLayerTrafficRequiresTwoGateways) {
  Simulator sim;
  Network net(sim, ChannelModel(), Rng(1));
  const NodeId g = net.add_node({0, 0}, {.base_loss = 0.0}, kLayerGround);
  const NodeId a = net.add_node({50, 0}, {.base_loss = 0.0}, kLayerAerial);
  EXPECT_EQ(net.layer(g), kLayerGround);
  EXPECT_EQ(net.layer(a), kLayerAerial);
  // In radio range but in different layers: no link, no traffic.
  EXPECT_FALSE(net.send(g, a, Message{.kind = "x", .size_bytes = 8}));
  EXPECT_EQ(net.broadcast(g, Message{.kind = "x", .size_bytes = 8}), 0u);
  EXPECT_FALSE(net.route_exists(g, a));
  // The addressed send is a counted drop; broadcast skips non-linked
  // candidates silently, exactly like out-of-range ones.
  EXPECT_EQ(net.frames_dropped(), 1u);
  // One gateway is not enough — a bridge needs both ends.
  net.set_gateway(g, true);
  EXPECT_FALSE(net.send(g, a, Message{.kind = "x", .size_bytes = 8}));
  // Both gateways: the inter-layer edge exists and traffic flows.
  net.set_gateway(a, true);
  EXPECT_TRUE(net.is_gateway(g));
  EXPECT_TRUE(net.route_exists(g, a));
  EXPECT_TRUE(net.send(g, a, Message{.kind = "x", .size_bytes = 8}));
}

TEST(NetworkLayers, GatewaysBridgeMultiHopRoutes) {
  Simulator sim;
  // Lossless channel: this test is about reachability, not loss draws.
  Network net(sim, ChannelModel(2.0, 0.0), Rng(2));
  // Ground chain g0-g1, aerial chain a0-a1, bridged at g1<->a0.
  const NodeId g0 = net.add_node({0, 0}, {.range_m = 150, .base_loss = 0.0}, kLayerGround);
  const NodeId g1 = net.add_node({100, 0}, {.range_m = 150, .base_loss = 0.0}, kLayerGround);
  const NodeId a0 = net.add_node({200, 0}, {.range_m = 150, .base_loss = 0.0}, kLayerAerial);
  const NodeId a1 = net.add_node({300, 0}, {.range_m = 150, .base_loss = 0.0}, kLayerAerial);
  EXPECT_FALSE(net.route_exists(g0, a1));
  net.set_gateway(g1, true);
  net.set_gateway(a0, true);
  ASSERT_TRUE(net.route_exists(g0, a1));
  bool got = false;
  net.set_handler(a1, [&](const Message&) { got = true; });
  EXPECT_TRUE(net.route_and_send(g0, a1, Message{.kind = "alert", .size_bytes = 16}));
  sim.run();
  EXPECT_TRUE(got);
  // The only cross-layer edge is the gateway pair.
  const Topology t = net.connectivity();
  EXPECT_TRUE(t.has_edge(g1, a0));
  EXPECT_FALSE(t.has_edge(g1, a1));
  EXPECT_FALSE(t.has_edge(g0, a0));
}

TEST(NetworkLayers, LayerBlockedDropsAreCounted) {
  Simulator sim;
  Network net(sim, ChannelModel(), Rng(3));
  const NodeId g = net.add_node({0, 0}, {}, kLayerGround);
  const NodeId c = net.add_node({10, 0}, {}, kLayerCommand);
  EXPECT_FALSE(net.send(g, c, Message{.kind = "x", .size_bytes = 8}));
  EXPECT_DOUBLE_EQ(net.metrics().counter("net.drop." + to_string(DropReason::kLayerBlocked)), 1.0);
}

TEST(NetworkLayers, GatewayFlipBumpsEpochOnlyWhenLinksChange) {
  Simulator sim;
  Network net(sim, ChannelModel(), Rng(4));
  const NodeId g = net.add_node({0, 0}, {}, kLayerGround);
  const NodeId g2 = net.add_node({30, 0}, {}, kLayerGround);
  const NodeId a = net.add_node({60, 0}, {}, kLayerAerial);
  (void)g2;
  const std::uint64_t e0 = net.topology_epoch();
  // No cross-layer gateway peer in range: the flip changes no link and
  // must not invalidate routes (flat networks rely on this staying free).
  net.set_gateway(g, true);
  EXPECT_EQ(net.topology_epoch(), e0);
  net.set_gateway(g, false);
  EXPECT_EQ(net.topology_epoch(), e0);
  // With a gateway peer across the layer boundary, both the promotion and
  // the demotion change an edge and must bump.
  net.set_gateway(a, true);
  EXPECT_EQ(net.topology_epoch(), e0);  // g is not a gateway yet: still no edge
  net.set_gateway(g, true);
  EXPECT_EQ(net.topology_epoch(), e0 + 1);
  net.set_gateway(g, false);
  EXPECT_EQ(net.topology_epoch(), e0 + 2);
}

TEST(NetworkLayers, DownGatewayRevivalReformsInterLayerLinks) {
  Simulator sim;
  Network net(sim, ChannelModel(), Rng(5));
  const NodeId g = net.add_node({0, 0}, {}, kLayerGround);
  const NodeId a = net.add_node({40, 0}, {}, kLayerAerial);
  net.set_gateway(g, true);
  net.set_gateway(a, true);
  EXPECT_TRUE(net.connectivity().has_edge(g, a));
  net.set_node_up(a, false);
  EXPECT_FALSE(net.connectivity().has_edge(g, a));
  net.set_node_up(a, true);
  EXPECT_TRUE(net.connectivity().has_edge(g, a));
}

TEST(NetworkLayers, GatewayChurnIsIdenticalAcrossAllMaintenanceModes) {
  // Random multi-layer churn (moves, liveness flips, gateway flips)
  // replayed in all four {grid,brute} x {incremental,rebuild} modes: the
  // connectivity snapshots and epoch trajectories must be bit-identical.
  const auto run_mode = [](bool use_grid, bool use_incremental) {
    Simulator sim;
    Network net(sim, ChannelModel(), Rng(6));
    net.set_spatial_index_enabled(use_grid);
    net.set_incremental_connectivity_enabled(use_incremental);
    Rng drive(0xC0FFEE);
    std::vector<NodeId> ids;
    for (int i = 0; i < 60; ++i) {
      const auto layer = static_cast<LayerId>(i % 3);
      ids.push_back(net.add_node({drive.uniform(0, 700), drive.uniform(0, 700)},
                                 {.range_m = 220}, layer));
      if (i % 4 == 0) net.set_gateway(ids.back(), true);
    }
    std::vector<std::uint64_t> trail;
    for (int round = 0; round < 6; ++round) {
      for (const NodeId id : ids) {
        const double action = drive.uniform();
        if (action < 0.25) {
          net.set_gateway(id, !net.is_gateway(id));
        } else if (action < 0.4) {
          net.set_node_up(id, !net.node_up(id));
        } else {
          net.set_position(id, {drive.uniform(0, 700), drive.uniform(0, 700)});
        }
      }
      const Topology t = net.connectivity();
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const Edge& e : t.edges()) {
        h ^= (static_cast<std::uint64_t>(e.a) << 32) | e.b;
        h *= 0x100000001b3ULL;
      }
      trail.push_back(h);
      trail.push_back(t.edge_count());
      trail.push_back(net.topology_epoch());
    }
    return trail;
  };
  const auto reference = run_mode(false, false);
  EXPECT_EQ(run_mode(false, true), reference);
  EXPECT_EQ(run_mode(true, false), reference);
  EXPECT_EQ(run_mode(true, true), reference);
}

}  // namespace
}  // namespace iobt::net
