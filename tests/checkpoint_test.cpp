// Tests for deterministic checkpoint/branch/restore (sim/checkpoint.h):
// snapshot blob typing, registry key suffixing, clock rewind, FIFO-order
// re-arming, the no-unowned-pending-events invariant, and digest-identical
// restore across the full substrate stack (world mobility/energy, mid-
// flight network frames, attack campaigns, fresh-stack branching).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "checkpoint_scenario.h"
#include "dissem/scenario.h"
#include "net/network.h"
#include "security/attacks.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"
#include "things/world.h"

namespace iobt {
namespace {

using sim::Duration;
using sim::Rng;
using sim::SimTime;
using testing::CheckpointScenario;

// ----------------------------------------------------------- Snapshot ----

TEST(Snapshot, TypedBlobsRoundTripAndMismatchesThrow) {
  sim::Snapshot snap;
  snap.put(std::string("answer"), 42);
  snap.put(std::string("name"), std::string("alpha"));
  EXPECT_EQ(snap.get<int>("answer"), 42);
  EXPECT_EQ(snap.get<std::string>("name"), "alpha");
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap.has("answer"));
  EXPECT_FALSE(snap.has("absent"));
  EXPECT_THROW(snap.get<double>("answer"), std::logic_error);  // wrong type
  EXPECT_THROW(snap.get<int>("absent"), std::logic_error);     // missing key
}

// ------------------------------------------------- Test participants ----

/// Minimal participant: saves one int, restores nothing, used for
/// registry-level tests (key suffixing, clock rewind).
struct Dummy final : sim::Checkpointable {
  std::string_view checkpoint_key() const override { return "dup"; }
  void save(sim::Snapshot& snap, const std::string& key) const override {
    snap.put(key, 1);
  }
  void restore(const sim::Snapshot&, const std::string&,
               sim::RestoreArmer&) override {}
};

/// A participant owning a list of one-shot events; each fire appends its
/// value to a shared output vector. Save captures (value, when, fired,
/// original seq) per row; restore re-arms the unfired rows. This is the
/// minimal shape of the "service re-arms its own closures" contract.
class Emitter final : public sim::Checkpointable {
 public:
  Emitter(sim::Simulator& sim, std::string key, std::vector<int>& out)
      : sim_(sim), key_(std::move(key)), out_(&out) {
    sim_.checkpoint().register_participant(this);
  }
  ~Emitter() override {
    for (const Row& r : rows_) sim_.cancel(r.id);
    sim_.checkpoint().unregister(this);
  }

  void arm(int value, SimTime when) {
    rows_.push_back(Row{value, when, false, sim::kNoEvent});
    const std::size_t i = rows_.size() - 1;
    rows_[i].id = sim_.schedule_at(when, [this, i] { fire(i); });
  }

  std::string_view checkpoint_key() const override { return key_; }

  struct SavedRow {
    int value = 0;
    SimTime when;
    bool fired = false;
    std::uint64_t seq = 0;
  };
  struct State {
    std::vector<SavedRow> rows;
  };

  void save(sim::Snapshot& snap, const std::string& key) const override {
    State st;
    for (const Row& r : rows_) {
      st.rows.push_back({r.value, r.when, r.fired, sim_.pending_seq(r.id)});
    }
    snap.put(key, std::move(st));
  }

  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override {
    for (Row& r : rows_) {
      sim_.cancel(r.id);
      r.id = sim::kNoEvent;
    }
    const auto& st = snap.get<State>(key);
    rows_.resize(st.rows.size());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      rows_[i] = Row{st.rows[i].value, st.rows[i].when, st.rows[i].fired,
                     sim::kNoEvent};
      if (!rows_[i].fired) {
        armer.rearm(rows_[i].when, st.rows[i].seq, [this, i] { fire(i); },
                    sim::kUntagged, &rows_[i].id);
      }
    }
  }

 private:
  struct Row {
    int value = 0;
    SimTime when;
    bool fired = false;
    sim::EventId id = sim::kNoEvent;
  };

  void fire(std::size_t i) {
    rows_[i].fired = true;
    rows_[i].id = sim::kNoEvent;
    out_->push_back(rows_[i].value);
  }

  sim::Simulator& sim_;
  std::string key_;
  std::vector<int>* out_;
  std::vector<Row> rows_;
};

// ----------------------------------------------------------- Registry ----

TEST(CheckpointRegistry, DuplicateKeysGetDeterministicSuffixes) {
  sim::Simulator sim;
  Dummy d1, d2, d3;
  auto& reg = sim.checkpoint();
  // The n-th participant claiming a key gets "#<n>".
  EXPECT_EQ(reg.register_participant(&d1), "dup");
  EXPECT_EQ(reg.register_participant(&d2), "dup#2");
  EXPECT_EQ(reg.register_participant(&d3), "dup#3");
  EXPECT_EQ(reg.participant_count(), 3u);

  const sim::Snapshot snap = reg.save();
  EXPECT_TRUE(snap.has("dup"));
  EXPECT_TRUE(snap.has("dup#2"));
  EXPECT_TRUE(snap.has("dup#3"));

  reg.unregister(&d2);
  EXPECT_EQ(reg.participant_count(), 2u);
  // The snapshot no longer matches the roster: restore must refuse.
  EXPECT_THROW(reg.restore(snap), std::logic_error);
  reg.unregister(&d1);
  reg.unregister(&d3);
}

TEST(CheckpointRegistry, SnapshotCarriesItsPrefixStamp) {
  // The campaign service (src/serve/) keys its checkpoint cache by a
  // canonical scenario-prefix hash and stamps each snapshot with its key at
  // save time, then verifies the stamp before restoring — a cache-integrity
  // check against aliased or mis-filed entries.
  sim::Simulator sim;
  Dummy d;
  sim.checkpoint().register_participant(&d);
  const sim::Snapshot unstamped = sim.checkpoint().save();
  EXPECT_EQ(unstamped.prefix_hash(), 0u);  // default: no key
  const sim::Snapshot stamped = sim.checkpoint().save(0xC0FFEE1234ULL);
  EXPECT_EQ(stamped.prefix_hash(), 0xC0FFEE1234ULL);
  // The stamp is metadata only: a stamped snapshot restores normally.
  sim.checkpoint().restore(stamped);
  sim.checkpoint().unregister(&d);
}

TEST(CheckpointRegistry, RestoreRewindsTheClock) {
  sim::Simulator sim;
  std::vector<int> out;
  Emitter e(sim, "emitter", out);
  sim.run_until(SimTime::seconds(5));
  const sim::Snapshot snap = sim.checkpoint().save();
  EXPECT_EQ(snap.at(), SimTime::seconds(5));
  sim.run_until(SimTime::seconds(9));
  EXPECT_EQ(sim.now(), SimTime::seconds(9));
  sim.checkpoint().restore(snap);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(CheckpointRegistry, RearmPreservesFifoOrderAtEqualTimestamps) {
  sim::Simulator sim;
  std::vector<int> out;
  Emitter a(sim, "a", out);
  Emitter b(sim, "b", out);
  // Interleaved arms, all at the same timestamp: the only thing ordering
  // their execution is the FIFO scheduling seq.
  const SimTime t = SimTime::seconds(1);
  a.arm(1, t);
  b.arm(2, t);
  a.arm(3, t);
  b.arm(4, t);
  a.arm(5, SimTime::seconds(2));

  const sim::Snapshot snap = sim.checkpoint().save();
  sim.run_until(SimTime::seconds(3));
  const std::vector<int> uninterrupted = out;
  ASSERT_EQ(uninterrupted, (std::vector<int>{1, 2, 3, 4, 5}));

  out.clear();
  sim.checkpoint().restore(snap);
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(out, uninterrupted);
}

TEST(CheckpointRegistry, NonParticipantPendingEventAbortsRestore) {
  sim::Simulator sim;
  sim.schedule_at(SimTime::seconds(1), [] {});
  const sim::Snapshot snap = sim.checkpoint().save();
  // The stray event belongs to no participant; restoring over it would
  // silently diverge the branch, so the registry refuses.
  EXPECT_THROW(sim.checkpoint().restore(snap), std::logic_error);
}

// -------------------------------------------------- World round trips ----

struct WorldStack {
  sim::Simulator sim;
  net::Network net{sim, net::ChannelModel(), Rng(3)};
  things::World world{sim, net, {{0, 0}, {500, 500}}, Rng(4)};
};

TEST(WorldCheckpoint, SharedMobilityStaysSharedAndPositionsReproduce) {
  WorldStack s;
  auto shared = std::make_shared<things::RandomWaypoint>(
      s.world.area(), 3.0, 1.0, Rng(77));
  const auto add = [&](std::shared_ptr<things::MobilityModel> m, sim::Vec2 at) {
    Rng maker(s.world.asset_count() + 10);
    things::AssetSpec a = things::make_asset_template(
        things::DeviceClass::kSensorMote, things::Affiliation::kBlue, maker);
    a.mobility = std::move(m);
    return s.world.add_asset(std::move(a), at, {});
  };
  const auto a0 = add(shared, {10, 10});
  const auto a1 = add(shared, {400, 400});
  const auto a2 = add(std::make_shared<things::GridPatrol>(s.world.area(), 50.0,
                                                           2.0, Rng(78)),
                      {250, 250});
  s.world.start(Duration::seconds(1));
  s.sim.run_until(SimTime::seconds(10));
  const sim::Snapshot snap = s.sim.checkpoint().save();

  s.sim.run_until(SimTime::seconds(40));
  const sim::Vec2 p0 = s.world.asset_position(a0);
  const sim::Vec2 p1 = s.world.asset_position(a1);
  const sim::Vec2 p2 = s.world.asset_position(a2);

  s.sim.checkpoint().restore(snap);
  // Aliasing is model state: the two assets sharing one waypoint model
  // before the save share one clone after the restore.
  EXPECT_EQ(s.world.mobility(a0).get(), s.world.mobility(a1).get());
  EXPECT_NE(s.world.mobility(a0).get(), s.world.mobility(a2).get());
  // And the snapshot's own models were not adopted (it stays immutable).
  EXPECT_NE(s.world.mobility(a0).get(), shared.get());

  s.sim.run_until(SimTime::seconds(40));
  EXPECT_EQ(s.world.asset_position(a0).x, p0.x);
  EXPECT_EQ(s.world.asset_position(a0).y, p0.y);
  EXPECT_EQ(s.world.asset_position(a1).x, p1.x);
  EXPECT_EQ(s.world.asset_position(a1).y, p1.y);
  EXPECT_EQ(s.world.asset_position(a2).x, p2.x);
  EXPECT_EQ(s.world.asset_position(a2).y, p2.y);
}

// ---------------------------------------------- Network mid-flight ----

TEST(NetworkCheckpoint, MidFlightFramesRestoreDigestIdentical) {
  sim::Simulator sim;
  net::Network net(sim, net::ChannelModel(2.0, 0.3), Rng(7));
  std::vector<net::NodeId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(net.add_node({i * 120.0, 0.0}, {.range_m = 150}));
  }
  for (const auto id : ids) {
    net.set_handler(id, [&net](const net::Message&) {
      net.metrics().count("test.received");
    });
  }
  // Multi-hop chains + broadcasts: deliveries land at >= 1 ms, so saving
  // at 0.5 ms captures frames on the air mid-flight.
  net.route_and_send(ids[0], ids[7], net::Message{.kind = "data", .size_bytes = 64});
  net.route_and_send(ids[7], ids[0], net::Message{.kind = "data", .size_bytes = 64});
  for (const auto id : ids) {
    net.broadcast(id, net::Message{.kind = "hello", .size_bytes = 16});
  }
  sim.run_until(SimTime::micros(500));
  ASSERT_GT(sim.pending_count(), 0u) << "expected frames in flight at save";
  const sim::Snapshot snap = sim.checkpoint().save();

  sim.run();
  const std::uint64_t uninterrupted = net.metrics().digest();

  sim.checkpoint().restore(snap);
  sim.run();
  EXPECT_EQ(net.metrics().digest(), uninterrupted);
}

// ------------------------------------------------- Full-stack branch ----

constexpr std::uint64_t kSeed = 2026;
const SimTime kSnapAt = SimTime::seconds(55);  // mid-jamming, between waves
const SimTime kHorizon = SimTime::seconds(120);

TEST(Branching, FreshStackRestoreMatchesUninterruptedRun) {
  CheckpointScenario a(kSeed);
  a.sim.run_until(kSnapAt);
  const sim::Snapshot snap = a.sim.checkpoint().save();
  a.sim.run_until(kHorizon);
  const std::uint64_t uninterrupted = a.digest();

  // The same scenario code builds a fresh stack; the snapshot overwrites
  // its state and the branch must land bit-identically.
  CheckpointScenario b(kSeed);
  b.sim.checkpoint().restore(snap);
  EXPECT_EQ(b.sim.now(), kSnapAt);
  b.sim.run_until(kHorizon);
  EXPECT_EQ(b.digest(), uninterrupted);
}

TEST(Branching, InPlaceRewindMatchesUninterruptedRun) {
  CheckpointScenario a(kSeed + 1);
  a.sim.run_until(kSnapAt);
  const sim::Snapshot snap = a.sim.checkpoint().save();
  a.sim.run_until(kHorizon);
  const std::uint64_t uninterrupted = a.digest();

  a.sim.checkpoint().restore(snap);
  EXPECT_EQ(a.sim.now(), kSnapAt);
  a.sim.run_until(kHorizon);
  EXPECT_EQ(a.digest(), uninterrupted);
}

TEST(Branching, KWayFanoutBranchesAreIdenticalAndIndependent) {
  CheckpointScenario a(kSeed + 2);
  a.sim.run_until(kSnapAt);
  const sim::Snapshot snap = a.sim.checkpoint().save();
  a.sim.run_until(kHorizon);
  const std::uint64_t uninterrupted = a.digest();

  // One snapshot, several branches: every branch replays identically, and
  // running one branch does not perturb the next (the snapshot is
  // immutable; each restore clones out of it).
  for (int k = 0; k < 3; ++k) {
    CheckpointScenario branch(kSeed + 2);
    branch.sim.checkpoint().restore(snap);
    branch.sim.run_until(kHorizon);
    EXPECT_EQ(branch.digest(), uninterrupted) << "branch " << k;
  }
}

TEST(Branching, MismatchedAttackCampaignThrows) {
  struct MiniStack {
    sim::Simulator sim;
    net::Network net{sim, net::ChannelModel(), Rng(1)};
    things::World world{sim, net, {{0, 0}, {100, 100}}, Rng(2)};
    security::AttackInjector attacks{world};
  };
  MiniStack a;
  a.attacks.schedule_node_kill(0, SimTime::seconds(10));
  const sim::Snapshot snap = a.sim.checkpoint().save();

  // Same participants, different campaign time: refuse.
  MiniStack b;
  b.attacks.schedule_node_kill(0, SimTime::seconds(11));
  EXPECT_THROW(b.sim.checkpoint().restore(snap), std::logic_error);

  // Fewer scheduled attacks than the snapshot carries: refuse.
  MiniStack c;
  EXPECT_THROW(c.sim.checkpoint().restore(snap), std::logic_error);
}

TEST(AttackCheckpoint, RestoreRewindsScheduleCursorWithoutRefiring) {
  CheckpointScenario a(kSeed + 3);
  a.sim.run_until(kSnapAt);
  // Fired by 55 s: sybil@30, blackout_on@35, jam_on@40.
  const std::size_t fired_at_snap = a.attacks.fired_count();
  EXPECT_EQ(fired_at_snap, 3u);
  const std::size_t log_at_snap = a.attacks.log().size();
  const sim::Snapshot snap = a.sim.checkpoint().save();

  a.sim.run_until(kHorizon);
  const std::size_t fired_final = a.attacks.fired_count();
  EXPECT_GT(fired_final, fired_at_snap);
  std::vector<std::string> final_log;
  for (const auto& e : a.attacks.log()) final_log.push_back(e.type);

  a.sim.checkpoint().restore(snap);
  EXPECT_EQ(a.attacks.fired_count(), fired_at_snap);
  EXPECT_EQ(a.attacks.log().size(), log_at_snap);

  a.sim.run_until(kHorizon);
  EXPECT_EQ(a.attacks.fired_count(), fired_final);
  std::vector<std::string> replayed_log;
  for (const auto& e : a.attacks.log()) replayed_log.push_back(e.type);
  EXPECT_EQ(replayed_log, final_log);  // nothing double-fired, nothing lost
}

// ------------------------------------------------ Mid-epidemic branch ----
//
// ISSUE 7 satellite: checkpoint coverage for the layered-network and
// dissemination state. The snapshot is taken mid-epidemic — the alert has
// landed on some nodes, regossip rounds are armed but unfired, and the
// gateway-hunt campaign straddles the snapshot (early kills and their
// promotions already happened; later kills are still pending) — and both
// branch styles must replay the uninterrupted run bit-for-bit: informed
// sets and times, promotions, layer/gateway slabs, and the full metrics
// digest.

dissem::DissemSpec mid_epidemic_spec() {
  dissem::DissemSpec spec;
  spec.name = "checkpoint";
  spec.layers = dissem::ground_aerial_layers();
  spec.mobility = dissem::MobilityKind::kWaypoint;
  spec.attack = dissem::AttackCampaign::kGatewayHunt;
  spec.intensity = 1.0;
  spec.horizon_s = 60.0;
  return spec;
}

// Alert seeds at 5 s and spreads in 2 s hops; 8.5 s is mid-wave: partial
// reach, pending regossip rounds (13 s, 19 s, ...), and a hunt campaign
// (kills at 6, 7.5, 9, ...) that is part-fired, part-pending — promotions
// already recorded AND still to come straddle the snapshot.
const SimTime kEpidemicSnapAt = SimTime::seconds(8.5);

TEST(DissemCheckpoint, MidEpidemicFreshStackBranchIsBitIdentical) {
  const std::uint64_t seed = 909;
  dissem::DissemScenario a(mid_epidemic_spec(), seed);
  a.sim.run_until(kEpidemicSnapAt);
  const std::size_t informed_at_snap = a.dissem.informed_count();
  ASSERT_GT(informed_at_snap, 0u);                    // epidemic underway
  ASSERT_LT(informed_at_snap, a.net.node_count());    // ... but not done
  const sim::Snapshot snap = a.sim.checkpoint().save();
  a.sim.run_until(SimTime::seconds(60));
  const dissem::DissemOutcome uninterrupted = a.outcome();
  ASSERT_GT(uninterrupted.promotions, 0u);  // the hunt happened post-snap

  // Fresh stack built by the same (spec, seed): restore + run must land on
  // the identical outcome, digest included.
  dissem::DissemScenario b(mid_epidemic_spec(), seed);
  b.sim.checkpoint().restore(snap);
  EXPECT_EQ(b.sim.now(), kEpidemicSnapAt);
  EXPECT_EQ(b.dissem.informed_count(), informed_at_snap);
  b.sim.run_until(SimTime::seconds(60));
  const dissem::DissemOutcome branched = b.outcome();
  EXPECT_EQ(branched.digest, uninterrupted.digest);
  EXPECT_EQ(branched.informed, uninterrupted.informed);
  EXPECT_EQ(branched.promotions, uninterrupted.promotions);
  EXPECT_EQ(branched.live, uninterrupted.live);
}

TEST(DissemCheckpoint, MidEpidemicInPlaceRewindIsBitIdentical) {
  dissem::DissemScenario a(mid_epidemic_spec(), 910);
  a.sim.run_until(kEpidemicSnapAt);
  const sim::Snapshot snap = a.sim.checkpoint().save();
  a.sim.run_until(SimTime::seconds(60));
  const dissem::DissemOutcome uninterrupted = a.outcome();

  // Rewind the SAME stack: informed times, gateway state, and pending
  // gossip rows all roll back, then replay identically.
  a.sim.checkpoint().restore(snap);
  EXPECT_EQ(a.sim.now(), kEpidemicSnapAt);
  a.sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(a.outcome().digest, uninterrupted.digest);
}

TEST(DissemCheckpoint, LayerAndGatewaySlabsRoundTrip) {
  // Promote/demote against the snapshot state and check restore puts the
  // layer topology back exactly: layers, gateway flags, and the
  // inter-layer edges they induce.
  dissem::DissemScenario a(mid_epidemic_spec(), 911);
  a.sim.run_until(kEpidemicSnapAt);
  std::vector<net::LayerId> layers;
  std::vector<bool> gateways;
  for (net::NodeId id = 0; id < a.net.node_count(); ++id) {
    layers.push_back(a.net.layer(id));
    gateways.push_back(a.net.is_gateway(id));
  }
  const std::size_t edges_at_snap = a.net.connectivity().edge_count();
  const sim::Snapshot snap = a.sim.checkpoint().save();

  a.sim.run_until(SimTime::seconds(60));  // hunt kills + promotions mutate
  a.sim.checkpoint().restore(snap);
  for (net::NodeId id = 0; id < a.net.node_count(); ++id) {
    EXPECT_EQ(a.net.layer(id), layers[id]) << "node " << id;
    EXPECT_EQ(a.net.is_gateway(id), gateways[id]) << "node " << id;
  }
  EXPECT_EQ(a.net.connectivity().edge_count(), edges_at_snap);
}

}  // namespace
}  // namespace iobt
