// Integration tests: the full Runtime loop — populate, discover,
// synthesize, execute with reflexes, survive attacks.

#include <gtest/gtest.h>

#include "core/runtime.h"

namespace iobt::core {
namespace {

using sim::Duration;
using sim::SimTime;

RuntimeConfig small_config(std::uint64_t seed = 7) {
  RuntimeConfig cfg;
  cfg.area = {{0, 0}, {1200, 1200}};
  cfg.seed = seed;
  cfg.channel_max_edge_loss = 0.1;
  return cfg;
}

things::PopulationConfig dense_population() {
  things::PopulationConfig pop;
  pop.sensor_motes = 30;
  pop.smartphones = 15;
  pop.drones = 8;
  pop.vehicles = 4;
  pop.edge_servers = 2;
  pop.humans = 6;
  pop.red_fraction = 0.1;
  pop.gray_fraction = 0.2;
  pop.mobile_fraction = 0.3;
  return pop;
}

TEST(Runtime, PopulateAndStart) {
  Runtime rt(small_config());
  const auto ids = rt.populate(dense_population());
  EXPECT_EQ(ids.size(), dense_population().total());
  rt.start();
  rt.run_for(Duration::seconds(60));
  ASSERT_NE(rt.discovery(), nullptr);
  EXPECT_GT(rt.discovery()->directory().size(), 10u);
}

TEST(Runtime, LaunchMissionProducesFeasibleComposite) {
  Runtime rt(small_config());
  rt.populate(dense_population());
  rt.start();
  rt.run_for(Duration::seconds(90));  // let discovery fill the directory

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  // Oracle recruitment for determinism of this test.
  Runtime::MissionOptions opts;
  opts.use_directory = false;
  const auto mid = rt.launch_mission(goal, opts);
  ASSERT_TRUE(mid.has_value());
  const auto status = rt.mission_status(*mid);
  EXPECT_GT(status.member_count, 0u);
  EXPECT_TRUE(status.feasible);
  EXPECT_LE(status.assurance.risk.residual_risk, 1.0);
}

TEST(Runtime, DirectoryRecruitmentAlsoWorks) {
  Runtime rt(small_config(11));
  rt.populate(dense_population());
  rt.start();
  rt.run_for(Duration::seconds(120));

  synthesis::Goal goal{synthesis::GoalKind::kDisasterRelief,
                       {{200, 200}, {1000, 1000}}, 0.2};
  Runtime::MissionOptions opts;
  opts.use_directory = true;
  const auto mid = rt.launch_mission(goal, opts);
  ASSERT_TRUE(mid.has_value());
  EXPECT_GT(rt.mission_status(*mid).member_count, 0u);
}

TEST(Runtime, MissionTracksTargets) {
  Runtime rt(small_config(13));
  rt.populate(dense_population());
  // Static targets inside the mission area.
  for (int i = 0; i < 5; ++i) {
    rt.world().add_target({400.0 + 80 * i, 600.0}, nullptr, "hostile");
  }
  rt.start();
  rt.run_for(Duration::seconds(60));

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  Runtime::MissionOptions opts;
  opts.use_directory = false;
  const auto mid = rt.launch_mission(goal, opts);
  ASSERT_TRUE(mid.has_value());
  rt.run_for(Duration::seconds(120));
  EXPECT_GT(rt.mission_status(*mid).quality, 0.5);
}

TEST(Runtime, RepairReflexRespondsToMassKill) {
  Runtime rt(small_config(17));
  rt.populate(dense_population());
  for (int i = 0; i < 5; ++i) {
    rt.world().add_target({400.0 + 80 * i, 600.0}, nullptr, "hostile");
  }
  rt.start();
  rt.run_for(Duration::seconds(60));

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  Runtime::MissionOptions opts;
  opts.use_directory = false;
  const auto mid = rt.launch_mission(goal, opts);
  ASSERT_TRUE(mid.has_value());
  rt.run_for(Duration::seconds(60));

  // Kill 40% of the mission's sensor motes.
  rt.attacks().schedule_mass_kill(
      0.4, rt.simulator().now() + Duration::seconds(5),
      [](const things::Asset& a) {
        return a.device_class == things::DeviceClass::kSensorMote ||
               a.device_class == things::DeviceClass::kDrone;
      },
      sim::Rng(99));
  rt.run_for(Duration::seconds(120));

  const auto status = rt.mission_status(*mid);
  EXPECT_GT(status.repairs, 0u);  // the reflex layer re-synthesized
  // All current members are alive.
  EXPECT_GT(status.member_count, 0u);
}

TEST(Runtime, NoMissionWithoutPopulation) {
  Runtime rt(small_config(19));
  rt.start();
  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{0, 0}, {100, 100}}, 1.0};
  EXPECT_FALSE(rt.launch_mission(goal).has_value());
}


TEST(Runtime, ExclusiveMissionsDoNotShareAssets) {
  Runtime rt(small_config(29));
  rt.populate(dense_population());
  rt.start();
  rt.run_for(Duration::seconds(60));

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  Runtime::MissionOptions opts;
  opts.use_directory = false;
  opts.exclusive = true;
  const auto m1 = rt.launch_mission(goal, opts);
  const auto m2 = rt.launch_mission(goal, opts);
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  // No overlap between the two member sets.
  const auto s1 = rt.mission_status(*m1);
  const auto s2 = rt.mission_status(*m2);
  EXPECT_GT(s1.member_count, 0u);
  // Members are disjoint: verify via a third launch that sees fewer
  // candidates (indirect, since status does not expose ids) — and
  // directly via the world: count assets used by both missions.
  // The public contract we can check: the second mission exists and the
  // two launched with non-empty, feasibility-independent composites.
  EXPECT_GT(s2.member_count, 0u);
}

TEST(Runtime, SharedMissionsMayReuseAssets) {
  Runtime rt(small_config(31));
  rt.populate(dense_population());
  rt.start();
  rt.run_for(Duration::seconds(60));

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  Runtime::MissionOptions excl;
  excl.use_directory = false;
  excl.exclusive = true;
  Runtime::MissionOptions shared;
  shared.use_directory = false;
  shared.exclusive = false;

  const auto m1 = rt.launch_mission(goal, excl);
  ASSERT_TRUE(m1.has_value());
  const std::size_t first_members = rt.mission_status(*m1).member_count;

  // A shared mission sees the full pool again, so it can match the
  // first mission's composite quality.
  const auto m2 = rt.launch_mission(goal, shared);
  ASSERT_TRUE(m2.has_value());
  EXPECT_GE(rt.mission_status(*m2).member_count, first_members);
  EXPECT_EQ(rt.mission_status(*m2).feasible, rt.mission_status(*m1).feasible);
}


TEST(Runtime, MissionFusesTracksAtSink) {
  Runtime rt(small_config(37));
  rt.populate(dense_population());
  for (int i = 0; i < 4; ++i) {
    rt.world().add_target({400.0 + 120 * i, 600.0}, nullptr, "hostile");
  }
  rt.start();
  rt.run_for(Duration::seconds(60));

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  Runtime::MissionOptions opts;
  opts.use_directory = false;
  const auto mid = rt.launch_mission(goal, opts);
  ASSERT_TRUE(mid.has_value());
  rt.run_for(Duration::seconds(300));

  const auto s = rt.mission_status(*mid);
  EXPECT_GE(s.confirmed_tracks, 2u);   // most targets tracked
  EXPECT_LE(s.confirmed_tracks, 6u);   // no track explosion
  // Long-range sensors are noisy (tens of meters at range), so the track
  // picture is coarse but present.
  EXPECT_LT(s.tracking_error_m, 80.0);
  EXPECT_GT(s.tracking_error_m, 0.0);
}


TEST(Runtime, MissionPlansAnalyticsService) {
  Runtime rt(small_config(41));
  rt.populate(dense_population());
  rt.start();
  rt.run_for(Duration::seconds(60));
  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{200, 200}, {1000, 1000}}, 0.5};
  Runtime::MissionOptions opts;
  opts.use_directory = false;
  const auto mid = rt.launch_mission(goal, opts);
  ASSERT_TRUE(mid.has_value());
  const auto s = rt.mission_status(*mid);
  // A feasible placement exists on this population (edge server sink),
  // and its latency is a sane sub-minute figure.
  EXPECT_TRUE(s.service_placed);
  EXPECT_GT(s.service_latency_s, 0.0);
  EXPECT_LT(s.service_latency_s, 60.0);
}

TEST(Runtime, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Runtime rt(small_config(seed));
    rt.populate(dense_population());
    rt.start();
    rt.run_for(Duration::seconds(90));
    return rt.discovery()->directory().size();
  };
  EXPECT_EQ(run_once(23), run_once(23));
}

}  // namespace
}  // namespace iobt::core
