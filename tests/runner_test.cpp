// ParallelRunner: seed-ordered aggregation, worker-count invariance,
// failure capture, SummaryStats, and the metrics snapshot/merge path the
// runner's aggregation rides on.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

#include "sim/runner.h"
#include "sim/scenario_matrix.h"
#include "sim/simulator.h"

namespace iobt::sim {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

// ---------------------------------------------------------- SummaryStats ----

TEST(SummaryStatsTest, ComputesMeanStddevMinMax) {
  const auto s = SummaryStats::of({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(SummaryStatsTest, EmptyIsAllZero) {
  const auto s = SummaryStats::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummaryStatsTest, SingleSampleHasZeroStddev) {
  const auto s = SummaryStats::of({7.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
}

// -------------------------------------------------------- ParallelRunner ----

TEST(ParallelRunnerTest, SeedRangeIsConsecutive) {
  const auto seeds = ParallelRunner::seed_range(100, 4);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds[0], 100u);
  EXPECT_EQ(seeds[3], 103u);
}

TEST(ParallelRunnerTest, ResultsArriveInSeedOrderForEveryWorkerCount) {
  const std::vector<std::uint64_t> seeds = {7, 3, 11, 5, 2, 13, 17, 1};
  for (std::size_t workers : {0u, 1u, 2u, 8u, 16u}) {
    const ParallelRunner runner(workers);
    const auto outcome = runner.run<double>(seeds, [](ReplicationContext& ctx) {
      return static_cast<double>(ctx.seed * 2 + ctx.index);
    });
    ASSERT_EQ(outcome.replications.size(), seeds.size());
    EXPECT_EQ(outcome.failures, 0u);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const auto& r = outcome.replications[i];
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.seed, seeds[i]);
      EXPECT_EQ(r.index, i);
      EXPECT_DOUBLE_EQ(r.payload, static_cast<double>(seeds[i] * 2 + i));
      EXPECT_GE(r.wall_ms, 0.0);
    }
  }
}

TEST(ParallelRunnerTest, WorkerPoolClampsToReplicationCount) {
  const ParallelRunner runner(16);
  const auto outcome = runner.run<int>(ParallelRunner::seed_range(0, 2),
                                       [](ReplicationContext&) { return 1; });
  EXPECT_EQ(outcome.workers, 2u);
  const ParallelRunner serial(0);
  EXPECT_EQ(serial
                .run<int>(ParallelRunner::seed_range(0, 2),
                          [](ReplicationContext&) { return 1; })
                .workers,
            0u);
}

TEST(ParallelRunnerTest, EmptySeedListIsHarmless) {
  const ParallelRunner runner(4);
  const auto outcome =
      runner.run<int>({}, [](ReplicationContext&) { return 1; });
  EXPECT_TRUE(outcome.replications.empty());
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_EQ(outcome.merged.digest(), MetricsRegistry{}.digest());
}

TEST(ParallelRunnerTest, MergedMetricsMatchHandRolledSerialLoop) {
  const auto seeds = ParallelRunner::seed_range(40, 9);
  const auto body = [](ReplicationContext& ctx) {
    ctx.metrics.count("reps");
    ctx.metrics.count("seed.total", static_cast<double>(ctx.seed));
    ctx.metrics.gauge("last.seed", static_cast<double>(ctx.seed));
    ctx.metrics.observe("seed.dist", static_cast<double>(ctx.seed % 5));
    return static_cast<double>(ctx.seed);
  };

  MetricsRegistry expected;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ReplicationContext ctx;
    ctx.seed = seeds[i];
    ctx.index = i;
    body(ctx);
    expected.merge_from(ctx.metrics);
  }

  for (std::size_t workers : {0u, 1u, 3u, 8u}) {
    const ParallelRunner runner(workers);
    const auto outcome = runner.run<double>(seeds, body);
    EXPECT_EQ(outcome.merged.digest(), expected.digest()) << workers;
    EXPECT_DOUBLE_EQ(outcome.merged.counter("reps"), 9.0);
    EXPECT_DOUBLE_EQ(outcome.merged.gauge_value("last.seed"), 48.0);
  }
}

TEST(ParallelRunnerTest, FailureIsCapturedWithoutTearingDownThePool) {
  const ParallelRunner runner(
      {.workers = 4, .repro_program = "test_runner"});
  const auto seeds = ParallelRunner::seed_range(1, 8);
  const auto outcome = runner.run<double>(seeds, [](ReplicationContext& ctx) {
    if (ctx.seed == 5) throw std::runtime_error("invariant violated: seed 5");
    return 1.0;
  });
  EXPECT_EQ(outcome.failures, 1u);
  ASSERT_EQ(outcome.replications.size(), 8u);
  for (const auto& r : outcome.replications) {
    if (r.seed == 5) {
      EXPECT_FALSE(r.ok);
      EXPECT_EQ(r.payload, 0.0);  // default-constructed on failure
      EXPECT_NE(r.error.find("invariant violated"), std::string::npos);
      EXPECT_NE(r.repro.find("test_runner"), std::string::npos);
      EXPECT_NE(r.repro.find("--seed=5"), std::string::npos);
      EXPECT_NE(r.repro.find("--workers=0"), std::string::npos);
    } else {
      EXPECT_TRUE(r.ok) << r.seed;
      EXPECT_DOUBLE_EQ(r.payload, 1.0);
    }
  }
  // Failed replications contribute nothing to stats().
  EXPECT_EQ(outcome.stats([](const double& x) { return x; }).count, 7u);
}

TEST(ParallelRunnerTest, NonStdExceptionIsCaptured) {
  const ParallelRunner runner(2);
  const auto outcome = runner.run<int>(
      ParallelRunner::seed_range(0, 3), [](ReplicationContext& ctx) -> int {
        if (ctx.index == 1) throw 42;
        return 0;
      });
  EXPECT_EQ(outcome.failures, 1u);
  EXPECT_EQ(outcome.replications[1].error, "non-std exception");
}

TEST(ParallelRunnerTest, CapturesKernelProfilePerReplication) {
  const ParallelRunner runner(2);
  const auto outcome = runner.run<std::uint64_t>(
      ParallelRunner::seed_range(1, 4), [](ReplicationContext& ctx) {
        Simulator sim;
        const TagId tick = sim.intern("test.tick");
        for (int i = 0; i < 10; ++i) {
          sim.schedule_in(Duration::millis(i + 1), [] {}, tick);
        }
        sim.run();
        ctx.capture_profile(sim);
        return sim.executed_count();
      });
  for (const auto& r : outcome.replications) {
    EXPECT_EQ(r.payload, 10u);
    ASSERT_FALSE(r.profile.empty());
    EXPECT_EQ(r.profile[0].tag, "test.tick");
    EXPECT_EQ(r.profile[0].executed, 10u);
  }
}

TEST(ParallelRunnerTest, RepeatedRunsAreBitIdentical) {
  const auto seeds = ParallelRunner::seed_range(7, 10);
  const auto body = [](ReplicationContext& ctx) {
    Rng rng = ctx.make_rng();
    double acc = 0;
    for (int i = 0; i < 50; ++i) acc += rng.normal(0, 1);
    ctx.metrics.observe("acc", acc);
    return acc;
  };
  const ParallelRunner runner(4);
  const auto a = runner.run<double>(seeds, body);
  const auto b = runner.run<double>(seeds, body);
  EXPECT_EQ(a.merged.digest(), b.merged.digest());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(bits_of(a.replications[i].payload),
              bits_of(b.replications[i].payload));
  }
}

// ------------------------------------------------------- trace capture ----

namespace {
/// A replication body with one traced handler per run; seed 3 throws after
/// the handler executed, so its timeline exists at unwind time.
int traced_body(ReplicationContext& ctx) {
  Simulator sim;
  ctx.attach_tracer(sim);
  sim.schedule_in(Duration::seconds(1.0), []() {}, sim.intern("repl.work"));
  sim.run();
  if (ctx.seed == 3) throw std::runtime_error("post-work failure");
  return 1;
}
}  // namespace

TEST(ParallelRunnerTest, FailingReplicationShipsItsTrace) {
  ParallelRunner::Options opts;
  opts.workers = 2;
  opts.trace_capacity = 256;
  const ParallelRunner runner(opts);
  const auto out = runner.run<int>(ParallelRunner::seed_range(1, 4),
                                   std::function<int(ReplicationContext&)>(traced_body));
  EXPECT_EQ(out.failures, 1u);
  for (const auto& r : out.replications) {
    if (r.ok) {
      // Successes stay lean unless trace_all asks for them.
      EXPECT_TRUE(r.trace_json.empty()) << "seed " << r.seed;
    } else {
      EXPECT_EQ(r.seed, 3u);
      // The failure record carries the timeline that led up to it.
      EXPECT_NE(r.trace_json.find("\"traceEvents\""), std::string::npos);
      EXPECT_NE(r.trace_json.find("repl.work"), std::string::npos);
      // tid = replication index keeps multi-seed traces separable.
      EXPECT_NE(r.trace_json.find("\"tid\":2"), std::string::npos);
    }
  }
}

TEST(ParallelRunnerTest, TraceAllCapturesEveryReplication) {
  ParallelRunner::Options opts;
  opts.workers = 0;  // serial reference path
  opts.trace_capacity = 128;
  opts.trace_all = true;
  const ParallelRunner runner(opts);
  const auto out = runner.run<int>(ParallelRunner::seed_range(10, 3),
                                   std::function<int(ReplicationContext&)>(traced_body));
  EXPECT_EQ(out.failures, 0u);
  for (const auto& r : out.replications) {
    EXPECT_NE(r.trace_json.find("repl.work"), std::string::npos) << r.seed;
  }
}

TEST(ParallelRunnerTest, TracingOffByDefaultLeavesResultsLean) {
  const ParallelRunner runner(2);
  const auto out = runner.run<int>(ParallelRunner::seed_range(1, 4),
                                   std::function<int(ReplicationContext&)>(traced_body));
  EXPECT_EQ(out.failures, 1u);
  for (const auto& r : out.replications) EXPECT_TRUE(r.trace_json.empty());
}

TEST(ParallelRunnerTest, TracingDoesNotPerturbPayloads) {
  const auto body = [](ReplicationContext& ctx) {
    Simulator sim;
    ctx.attach_tracer(sim);
    Rng rng = ctx.make_rng();
    double acc = 0;
    sim.schedule_every(
        Duration::seconds(1.0),
        [&]() {
          acc += rng.normal(0, 1);
          return sim.now() < SimTime::seconds(10);
        },
        sim.intern("accumulate"));
    sim.run();
    return acc;
  };
  ParallelRunner::Options traced;
  traced.workers = 2;
  traced.trace_capacity = 64;  // deliberately tiny: wraparound exercised
  traced.trace_all = true;
  const auto with = ParallelRunner(traced).run<double>(
      ParallelRunner::seed_range(5, 6), body);
  const auto without =
      ParallelRunner(2).run<double>(ParallelRunner::seed_range(5, 6), body);
  for (std::size_t i = 0; i < with.replications.size(); ++i) {
    EXPECT_EQ(bits_of(with.replications[i].payload),
              bits_of(without.replications[i].payload));
  }
  EXPECT_EQ(with.merged.digest(), without.merged.digest());
}

// ------------------------------------------------- Campaign journal ----

namespace {

std::string temp_journal_path(const char* name) {
  return ::testing::TempDir() + "/iobt_journal_" + name + ".log";
}

std::string encode_double(const double& x) {
  return std::to_string(bits_of(x));
}

double decode_double(std::string_view s) {
  const std::uint64_t bits = std::stoull(std::string(s));
  double x = 0;
  std::memcpy(&x, &bits, sizeof x);
  return x;
}

}  // namespace

TEST(CampaignJournalTest, RoundTripEscapesAndLastWriteWins) {
  const std::string path = temp_journal_path("roundtrip");
  std::remove(path.c_str());
  {
    CampaignJournal j(path);
    MetricsRegistry m;
    m.count("c", 3);
    m.observe("lat", 0.25);
    // Payloads with every escaped character, plus a rewrite of (7, 0).
    j.append(JournalEntry{7, 0, 1.5, "tab\there\nand\rback\\slash", m.serialize()});
    j.append(JournalEntry{8, 1, 2.5, "plain", m.serialize()});
    j.append(JournalEntry{7, 0, 9.0, "rewritten", m.serialize()});
  }
  CampaignJournal reloaded(path);
  ASSERT_EQ(reloaded.entries().size(), 3u);
  const JournalEntry* e = reloaded.find(7, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, "rewritten");  // last write wins
  EXPECT_DOUBLE_EQ(e->wall_ms, 9.0);
  const JournalEntry* first = reloaded.find(8, 1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->payload, "plain");
  ASSERT_EQ(reloaded.entries()[0].payload, "tab\there\nand\rback\\slash");
  // The metrics image survives bit-exactly.
  auto m2 = MetricsRegistry::deserialize(e->metrics);
  ASSERT_TRUE(m2.has_value());
  MetricsRegistry m;
  m.count("c", 3);
  m.observe("lat", 0.25);
  EXPECT_EQ(m2->digest(), m.digest());
  EXPECT_EQ(reloaded.find(7, 1), nullptr);  // (seed, index) must BOTH match
}

TEST(CampaignJournalTest, MalformedLinesAreSkippedOnLoad) {
  const std::string path = temp_journal_path("malformed");
  std::remove(path.c_str());
  {
    CampaignJournal j(path);
    MetricsRegistry m;
    m.count("ok");
    j.append(JournalEntry{1, 0, 1.0, "a", m.serialize()});
    j.append(JournalEntry{2, 1, 1.0, "b", m.serialize()});
  }
  {
    // Simulate a crash-truncated write plus unrelated garbage.
    std::ofstream f(path, std::ios::app);
    f << "rep\t3\t2\t1.0\ttruncated-before-metr";  // no newline, short fields
  }
  CampaignJournal reloaded(path);
  EXPECT_EQ(reloaded.entries().size(), 2u);
  EXPECT_NE(reloaded.find(1, 0), nullptr);
  EXPECT_NE(reloaded.find(2, 1), nullptr);
  EXPECT_EQ(reloaded.find(3, 2), nullptr);
}

TEST(CampaignJournalTest, AppendAfterCrashTruncatedTailStartsFreshLine) {
  // Regression: a crash mid-write leaves a final line with no terminating
  // newline. The partial line's payload may itself contain ESCAPED
  // separators ("\\t" as backslash-t), so if the next append is glued onto
  // it the merged line is almost-parseable garbage — and the NEW valid
  // entry vanishes with it on the next load. The journal must detect the
  // unterminated tail on open and emit a separator before the first append.
  const std::string path = temp_journal_path("truncated_tail");
  std::remove(path.c_str());
  MetricsRegistry m;
  m.count("ok");
  {
    CampaignJournal j(path);
    j.append(JournalEntry{1, 0, 1.0, "intact", m.serialize()});
  }
  {
    // Crash-truncated tail whose payload field carries escaped separators
    // and which was cut before the metrics field.
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "rep\t9\t3\t2.0\tpay\\tload\\nwith\\tescapes";  // no trailing '\n'
  }
  {
    CampaignJournal reopened(path);
    EXPECT_EQ(reopened.entries().size(), 1u);  // truncated line skipped
    reopened.append(JournalEntry{2, 1, 4.0, "after-crash", m.serialize()});
  }
  CampaignJournal reloaded(path);
  ASSERT_EQ(reloaded.entries().size(), 2u);
  EXPECT_NE(reloaded.find(1, 0), nullptr);
  const JournalEntry* survivor = reloaded.find(2, 1);  // the entry at risk
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->payload, "after-crash");
  EXPECT_EQ(reloaded.find(9, 3), nullptr);  // the truncated entry stays lost
}

// ----------------------------------------------- Admission / observation ----

TEST(ParallelRunnerTest, AdmissionGateShedsWithoutRunningBody) {
  const auto seeds = ParallelRunner::seed_range(500, 8);
  std::atomic<std::size_t> bodies{0};
  std::atomic<std::size_t> completions{0};
  const auto body = [&bodies](ReplicationContext& ctx) {
    bodies.fetch_add(1, std::memory_order_relaxed);
    ctx.metrics.count("ran");
    return ctx.seed;
  };

  std::uint64_t reference_digest = 0;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    bodies.store(0);
    completions.store(0);
    ParallelRunner::Options opts;
    opts.workers = workers;
    opts.repro_program = "test_runner";
    // Pure function of index: shed the odd replications.
    opts.admit = [](std::uint64_t, std::size_t index) {
      return index % 2 == 0;
    };
    opts.on_complete = [&completions](std::uint64_t, std::size_t, bool,
                                      double) {
      completions.fetch_add(1, std::memory_order_relaxed);
    };
    const auto out = ParallelRunner(opts).run<std::uint64_t>(seeds, body);

    EXPECT_EQ(bodies.load(), 4u);       // rejected bodies never ran
    EXPECT_EQ(completions.load(), 8u);  // hook fires for rejected too
    EXPECT_EQ(out.failures, 4u);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const auto& r = out.replications[i];
      if (i % 2 == 0) {
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.payload, seeds[i]);
      } else {
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.error, "rejected by admission gate");
        EXPECT_NE(r.repro.find("--seed=" + std::to_string(seeds[i])),
                  std::string::npos);
        EXPECT_EQ(r.payload, 0u);  // body never produced one
      }
    }
    // The admitted set and merged metrics are worker-count invariant.
    if (workers == 0) {
      reference_digest = out.merged.digest();
    } else {
      EXPECT_EQ(out.merged.digest(), reference_digest);
    }
  }
}

TEST(ParallelRunnerTest, ResumableSkipsJournaledWorkAndMatchesUninterrupted) {
  const std::string path = temp_journal_path("resume");
  std::remove(path.c_str());
  const auto seeds = ParallelRunner::seed_range(300, 10);

  const auto work = [](ReplicationContext& ctx) {
    Simulator s;
    Rng rng = ctx.make_rng();
    double acc = 0;
    for (int i = 0; i < 50; ++i) {
      s.schedule_in(Duration::micros(rng.uniform_int(1, 1000)),
                    [&acc, &rng] { acc += rng.uniform(); });
    }
    s.run();
    ctx.metrics.count("events", static_cast<double>(s.executed_count()));
    ctx.metrics.observe("acc", acc);
    return acc;
  };

  // Reference: plain uninterrupted run.
  const auto reference = ParallelRunner(2).run<double>(seeds, work);
  ASSERT_EQ(reference.failures, 0u);

  // First campaign: replications 6..9 die (simulated crash window); the
  // journal captures only the 6 successes.
  {
    CampaignJournal journal(path);
    const auto partial = ParallelRunner(2).run_resumable<double>(
        seeds,
        [&work](ReplicationContext& ctx) {
          if (ctx.index >= 6) throw std::runtime_error("simulated crash");
          return work(ctx);
        },
        journal, encode_double, decode_double);
    EXPECT_EQ(partial.failures, 4u);
    EXPECT_EQ(partial.resumed, 0u);
    EXPECT_EQ(journal.entries().size(), 6u);
  }

  // Second campaign, fresh journal object over the same file: the six
  // journaled replications are replayed without invoking the body, the
  // four missing ones run, and the outcome is bit-identical to the
  // uninterrupted reference.
  CampaignJournal journal(path);
  std::atomic<std::size_t> invocations{0};
  const auto resumed = ParallelRunner(2).run_resumable<double>(
      seeds,
      [&work, &invocations](ReplicationContext& ctx) {
        invocations.fetch_add(1, std::memory_order_relaxed);
        return work(ctx);
      },
      journal, encode_double, decode_double);
  EXPECT_EQ(resumed.failures, 0u);
  EXPECT_EQ(resumed.resumed, 6u);
  EXPECT_EQ(invocations.load(), 4u);
  EXPECT_EQ(journal.entries().size(), 10u);
  EXPECT_EQ(resumed.merged.digest(), reference.merged.digest());
  ASSERT_EQ(resumed.replications.size(), reference.replications.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(bits_of(resumed.replications[i].payload),
              bits_of(reference.replications[i].payload))
        << "rep " << i;
  }

  // Third pass: everything journaled, nothing runs.
  CampaignJournal journal2(path);
  std::atomic<std::size_t> third_invocations{0};
  const auto full = ParallelRunner(2).run_resumable<double>(
      seeds,
      [&third_invocations, &work](ReplicationContext& ctx) {
        third_invocations.fetch_add(1, std::memory_order_relaxed);
        return work(ctx);
      },
      journal2, encode_double, decode_double);
  EXPECT_EQ(full.resumed, 10u);
  EXPECT_EQ(third_invocations.load(), 0u);
  EXPECT_EQ(full.merged.digest(), reference.merged.digest());
  std::remove(path.c_str());
}

// --------------------------------------------------------- ScenarioMatrix ----

ScenarioMatrix small_matrix(std::uint64_t seed = 7) {
  ScenarioMatrix m(seed);
  m.add_axis("size", {"small", "large"});
  m.add_axis("mode", {"a", "b", "c"});
  m.add_axis("attack", {"off", "on"});
  return m;
}

TEST(ScenarioMatrixTest, MixedRadixDecodeCoversTheCrossProduct) {
  const ScenarioMatrix m = small_matrix();
  EXPECT_EQ(m.cell_count(), 12u);
  // Axis 0 is the slowest-moving digit: cell 0 = (0,0,0), cell 1 = (0,0,1),
  // cell 2 = (0,1,0), ..., cell 11 = (1,2,1).
  EXPECT_EQ(m.cell(0).choice, (std::vector<std::size_t>{0, 0, 0}));
  EXPECT_EQ(m.cell(1).choice, (std::vector<std::size_t>{0, 0, 1}));
  EXPECT_EQ(m.cell(2).choice, (std::vector<std::size_t>{0, 1, 0}));
  EXPECT_EQ(m.cell(11).choice, (std::vector<std::size_t>{1, 2, 1}));
  EXPECT_EQ(m.cell(3).name, "size=small/mode=b/attack=on");
  // Every choice combination appears exactly once.
  std::set<std::vector<std::size_t>> seen;
  for (const ScenarioCell& c : m.all_cells()) seen.insert(c.choice);
  EXPECT_EQ(seen.size(), m.cell_count());
}

TEST(ScenarioMatrixTest, CellSeedsAreUniqueAndStable) {
  const ScenarioMatrix m = small_matrix();
  std::set<std::uint64_t> seeds;
  for (const ScenarioCell& c : m.all_cells()) seeds.insert(c.seed);
  EXPECT_EQ(seeds.size(), m.cell_count());
  // Stable under re-enumeration and independent of access order.
  EXPECT_EQ(m.cell(5).seed, small_matrix().cell(5).seed);
  // A different base seed moves every cell seed.
  EXPECT_NE(m.cell(5).seed, small_matrix(8).cell(5).seed);
}

TEST(ScenarioMatrixTest, SliceIsDeterministicDistinctAndBounded) {
  const ScenarioMatrix m = small_matrix();
  const auto s1 = m.slice(5, /*salt=*/11);
  const auto s2 = m.slice(5, /*salt=*/11);
  ASSERT_EQ(s1.size(), 5u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].index, s2[i].index);
    EXPECT_EQ(s1[i].seed, s2[i].seed);
  }
  // Distinct cells within a slice.
  std::set<std::size_t> indices;
  for (const ScenarioCell& c : s1) indices.insert(c.index);
  EXPECT_EQ(indices.size(), s1.size());
  // A different salt walks a different subset (with 792 possible 5-subsets
  // a collision would be a red flag for the shuffle).
  const auto s3 = m.slice(5, /*salt=*/12);
  std::vector<std::size_t> i1, i3;
  for (const auto& c : s1) i1.push_back(c.index);
  for (const auto& c : s3) i3.push_back(c.index);
  EXPECT_NE(i1, i3);
  // Oversized requests clamp to the full matrix.
  EXPECT_EQ(m.slice(100, 0).size(), m.cell_count());
}

TEST(ScenarioMatrixTest, EmptyVariantListThrows) {
  ScenarioMatrix m(1);
  EXPECT_THROW(m.add_axis("broken", {}), std::invalid_argument);
}

}  // namespace
}  // namespace iobt::sim
