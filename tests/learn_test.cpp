// Tests for the learning substrate: models, robust aggregation, federated
// and gossip training under attack and churn, continual learning, cost-
// aware topology activation, and IBP safety certification.

#include <gtest/gtest.h>

#include "learn/aggregation.h"
#include "learn/continual.h"
#include "learn/cost.h"
#include "learn/data.h"
#include "learn/federated.h"
#include "learn/model.h"
#include "learn/adversarial.h"
#include "learn/safety.h"

namespace iobt::learn {
namespace {

using sim::Rng;

// ----------------------------------------------------------------- Data ----

TEST(Data, BlobsAreLearnable) {
  Rng rng(1);
  const auto train = make_blobs(500, 4, 3.0, 0.02, rng);
  const auto test = make_blobs(200, 4, 3.0, 0.02, rng);
  LogisticModel m(4);
  Rng srng(2);
  m.sgd(train, 500, 16, 0.2, srng);
  EXPECT_GT(accuracy(test, [&](const Vec& x) { return m.predict(x); }), 0.9);
}

TEST(Data, ShardingPreservesTotalCount) {
  Rng rng(3);
  const auto data = make_blobs(1000, 3, 2.0, 0.0, rng);
  const auto shards = shard(data, 7, 0.5, rng);
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  EXPECT_EQ(total, 1000u);
}

TEST(Data, LabelSkewSeparatesLabels) {
  Rng rng(4);
  const auto data = make_blobs(2000, 3, 2.0, 0.0, rng);
  const auto shards = shard(data, 4, 1.0, rng);
  // With full skew, the first half of shards is ~all label 0, the second
  // half ~all label 1 (contiguous blocks: the hard case for gossip).
  for (std::size_t s = 0; s < 4; ++s) {
    if (shards[s].empty()) continue;
    double ones = 0;
    for (const auto& e : shards[s]) ones += e.y;
    const double frac = ones / static_cast<double>(shards[s].size());
    if (s < 2) {
      EXPECT_LT(frac, 0.1) << s;
    } else {
      EXPECT_GT(frac, 0.9) << s;
    }
  }
}

// --------------------------------------------------------------- Models ----

TEST(Logistic, GradientDescendsLoss) {
  Rng rng(5);
  const auto data = make_blobs(300, 3, 2.0, 0.05, rng);
  LogisticModel m(3);
  const double before = m.loss(data);
  Rng srng(6);
  m.sgd(data, 200, 16, 0.2, srng);
  EXPECT_LT(m.loss(data), before);
}

TEST(Logistic, GradientMatchesFiniteDifferences) {
  Rng rng(7);
  const auto data = make_blobs(50, 3, 1.5, 0.1, rng);
  LogisticModel m(3);
  Vec w = {0.3, -0.2, 0.5, 0.1};
  m.set_params(w);
  const Vec g = m.gradient(data);
  const double eps = 1e-6;
  for (std::size_t k = 0; k < w.size(); ++k) {
    Vec wp = w, wm = w;
    wp[k] += eps;
    wm[k] -= eps;
    LogisticModel mp(3), mm(3);
    mp.set_params(wp);
    mm.set_params(wm);
    const double num = (mp.loss(data) - mm.loss(data)) / (2 * eps);
    EXPECT_NEAR(g[k], num, 1e-5) << "coord " << k;
  }
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  Rng rng(8);
  const auto data = make_blobs(30, 2, 1.5, 0.1, rng);
  MlpModel m({2, 5, 1});
  Rng init(9);
  m.randomize(init);
  const Vec g = m.gradient(data);
  const Vec w = m.params();
  const double eps = 1e-6;
  // Spot-check a spread of coordinates (full sweep is slow and redundant).
  for (std::size_t k = 0; k < w.size(); k += 3) {
    Vec wp = w, wm = w;
    wp[k] += eps;
    wm[k] -= eps;
    MlpModel mp({2, 5, 1}), mm({2, 5, 1});
    mp.set_params(wp);
    mm.set_params(wm);
    const double num = (mp.loss(data) - mm.loss(data)) / (2 * eps);
    EXPECT_NEAR(g[k], num, 1e-4) << "coord " << k;
  }
}

TEST(Mlp, LearnsNonlinearRings) {
  Rng rng(10);
  const auto train = make_rings(2000, 2, rng);
  const auto test = make_rings(400, 2, rng);
  MlpModel m({2, 32, 1});
  Rng init(11);
  m.randomize(init);
  Rng srng(12);
  m.sgd(train, 12000, 32, 0.2, srng);
  // The annulus needs a genuinely nonlinear boundary; a logistic model
  // caps near the base rate (~0.55), so 0.8 demonstrates the MLP works.
  EXPECT_GT(accuracy(test, [&](const Vec& x) { return m.predict(x); }), 0.8);
}

TEST(Mlp, OutputBoundsContainPointEvaluations) {
  Rng rng(13);
  MlpModel m({3, 8, 1});
  m.randomize(rng);
  Rng prng(14);
  for (int trial = 0; trial < 50; ++trial) {
    Vec center(3), lo(3), hi(3);
    for (std::size_t k = 0; k < 3; ++k) {
      center[k] = prng.uniform(-2, 2);
      lo[k] = center[k] - 0.1;
      hi[k] = center[k] + 0.1;
    }
    const auto [plo, phi] = m.output_bounds(lo, hi);
    // Sample points inside the box: prediction must lie within bounds.
    for (int s = 0; s < 10; ++s) {
      Vec x(3);
      for (std::size_t k = 0; k < 3; ++k) x[k] = prng.uniform(lo[k], hi[k]);
      const double p = m.predict(x);
      EXPECT_GE(p, plo - 1e-9);
      EXPECT_LE(p, phi + 1e-9);
    }
  }
}

// ------------------------------------------------------------ Aggregation ----

TEST(Aggregation, MeanAndMedianBasics) {
  const std::vector<Vec> u = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(aggregate_mean(u), (Vec{2, 20}));
  EXPECT_EQ(aggregate_median(u), (Vec{2, 20}));
}

TEST(Aggregation, MedianIgnoresOneOutlier) {
  const std::vector<Vec> u = {{1, 1}, {1.1, 1.1}, {1000, -1000}};
  const Vec m = aggregate_median(u);
  EXPECT_NEAR(m[0], 1.1, 1e-9);  // median of {1, 1.1, 1000}
  EXPECT_NEAR(m[1], 1.0, 1e-9);  // median of {-1000, 1, 1.1}
}

TEST(Aggregation, TrimmedMeanDropsExtremes) {
  const std::vector<Vec> u = {{0}, {1}, {2}, {3}, {100}};
  const Vec t = aggregate_trimmed_mean(u, 1);
  EXPECT_DOUBLE_EQ(t[0], 2.0);  // mean of {1,2,3}
  EXPECT_THROW(aggregate_trimmed_mean(u, 3), std::invalid_argument);
}

TEST(Aggregation, KrumPicksClusterMember) {
  // Four honest vectors near (1,1); one Byzantine far away.
  const std::vector<Vec> u = {{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1.05, 1.0}, {50, -50}};
  const Vec k = aggregate_krum(u, 1);
  EXPECT_LT(std::abs(k[0] - 1.0), 0.2);
  EXPECT_LT(std::abs(k[1] - 1.0), 0.2);
}

TEST(Aggregation, KrumSingleInput) {
  EXPECT_EQ(aggregate_krum({{7, 7}}, 0), (Vec{7, 7}));
}

TEST(Aggregation, GeometricMedianRobustToOutlier) {
  const std::vector<Vec> u = {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {1000, 1000}};
  const Vec g = aggregate_geometric_median(u);
  EXPECT_LT(norm(g), 3.0);  // stays near the honest cluster
}

TEST(Aggregation, GeometricMedianOfIdenticalPoints) {
  const std::vector<Vec> u = {{2, 3}, {2, 3}, {2, 3}};
  const Vec g = aggregate_geometric_median(u);
  EXPECT_NEAR(g[0], 2.0, 1e-6);
  EXPECT_NEAR(g[1], 3.0, 1e-6);
}

TEST(Aggregation, DispatcherDegradesTrimGracefully) {
  // 3 inputs with f=2 would need > 4 inputs; dispatcher shrinks the trim.
  const std::vector<Vec> u = {{1}, {2}, {3}};
  EXPECT_NO_THROW(aggregate(AggregationRule::kTrimmedMean, u, 2));
}

// ---------------------------------------------------------- Distributed ----

struct FedFixture : ::testing::Test {
  // Separation 3.5 with 2% label noise: Bayes accuracy ~0.94, leaving
  // headroom between "converged" (>0.9) and "collapsed" (<0.8).
  Rng data_rng{21};
  Dataset train = make_blobs(1200, 4, 3.5, 0.02, data_rng);
  Dataset test = make_blobs(400, 4, 3.5, 0.02, data_rng);
};

TEST_F(FedFixture, CleanFederatedTrainingConverges) {
  FederatedConfig cfg;
  cfg.rounds = 25;
  Rng rng(22);
  const auto r = federated_train(train, test, 4, cfg, rng);
  EXPECT_GT(r.final_accuracy, 0.9);
  EXPECT_GT(r.bytes_communicated, 0u);
}

TEST_F(FedFixture, MeanCollapsesUnderByzantineSignFlip) {
  FederatedConfig cfg;
  cfg.rounds = 25;
  cfg.byzantine_count = 3;  // 30% attackers
  cfg.rule = AggregationRule::kMean;
  Rng rng(23);
  const auto r = federated_train(train, test, 4, cfg, rng);
  EXPECT_LT(r.final_accuracy, 0.8);  // the paper's vulnerability claim
}

TEST_F(FedFixture, KrumAndMedianSurviveByzantine) {
  for (auto rule : {AggregationRule::kKrum, AggregationRule::kMedian,
                    AggregationRule::kTrimmedMean}) {
    FederatedConfig cfg;
    cfg.rounds = 25;
    cfg.byzantine_count = 3;
    cfg.assumed_f = 3;
    cfg.rule = rule;
    Rng rng(24);
    const auto r = federated_train(train, test, 4, cfg, rng);
    EXPECT_GT(r.final_accuracy, 0.85) << to_string(rule);
  }
}

TEST_F(FedFixture, GossipConvergesOnConnectedTopology) {
  const auto topo = net::Topology::ring(8);
  GossipConfig cfg;
  cfg.rounds = 30;
  Rng rng(25);
  const auto r = gossip_train(topo, train, test, 4, cfg, rng);
  EXPECT_GT(r.final_accuracy, 0.88);
}

TEST_F(FedFixture, GossipToleratesLinkChurn) {
  const auto topo = net::Topology::ring(8);
  GossipConfig cfg;
  cfg.rounds = 40;
  cfg.link_up_probability = 0.5;  // half the links down each round
  Rng rng(26);
  const auto r = gossip_train(topo, train, test, 4, cfg, rng);
  EXPECT_GT(r.final_accuracy, 0.85);  // slower but still converges
}

TEST_F(FedFixture, NonIidShardingSlowsButDoesNotPreventLearning) {
  FederatedConfig iid, skew;
  iid.rounds = skew.rounds = 25;
  skew.label_skew = 0.9;
  Rng r1(27), r2(27);
  const auto a = federated_train(train, test, 4, iid, r1);
  const auto b = federated_train(train, test, 4, skew, r2);
  EXPECT_GT(b.final_accuracy, 0.8);
  EXPECT_GE(a.final_accuracy + 0.03, b.final_accuracy);
}

TEST(Disagreement, ZeroForIdenticalParams) {
  EXPECT_DOUBLE_EQ(parameter_disagreement({{1, 2}, {1, 2}}), 0.0);
  EXPECT_GT(parameter_disagreement({{0, 0}, {3, 4}}), 4.9);
}

// ------------------------------------------------------------ Continual ----

TEST(Continual, DetectsContextShiftAndRecalls) {
  ContextualConfig cfg;
  cfg.dim = 4;
  ContextualLearner learner(cfg);
  Rng rng(31);

  // Context 0 stream, then context 2 (120 deg rotation: strongly
  // different), then back to 0.
  const auto c0 = make_context(400, 4, 0, rng);
  const auto c2 = make_context(400, 4, 2, rng);
  const auto c0b = make_context(400, 4, 0, rng);
  for (const auto& e : c0) learner.observe(e);
  const std::size_t banks_after_first = learner.context_count();
  for (const auto& e : c2) learner.observe(e);
  EXPECT_GT(learner.switches_detected(), 0u);
  EXPECT_GT(learner.context_count(), banks_after_first);
  for (const auto& e : c0b) learner.observe(e);

  // Both contexts are servable by some stored model.
  Rng prng(32);
  const auto probe0 = make_context(200, 4, 0, prng);
  const auto probe2 = make_context(200, 4, 2, prng);
  EXPECT_GT(learner.accuracy_with_best_model(probe0), 0.8);
  EXPECT_GT(learner.accuracy_with_best_model(probe2), 0.8);
}

TEST(Continual, MonolithicForgetsContextualDoesNot) {
  Rng rng(33);
  const auto c0 = make_context(500, 4, 0, rng);
  const auto c2 = make_context(500, 4, 2, rng);
  Rng prng(34);
  const auto probe0 = make_context(300, 4, 0, prng);

  MonolithicLearner mono(4, 0.1);
  ContextualConfig cfg;
  cfg.dim = 4;
  ContextualLearner ctx(cfg);
  for (const auto& e : c0) {
    mono.observe(e);
    ctx.observe(e);
  }
  const double mono_before =
      accuracy(probe0, [&](const Vec& x) { return mono.predict(x); });
  for (const auto& e : c2) {
    mono.observe(e);
    ctx.observe(e);
  }
  const double mono_after =
      accuracy(probe0, [&](const Vec& x) { return mono.predict(x); });
  const double ctx_after = ctx.accuracy_with_best_model(probe0);
  EXPECT_LT(mono_after, mono_before - 0.1);  // catastrophic forgetting
  EXPECT_GT(ctx_after, mono_after + 0.1);    // the context bank remembers
}

// ----------------------------------------------------------- Cost-aware ----

TEST(Cost, DenserTopologyCostsMoreButConvergesFaster) {
  Rng data_rng(41);
  const auto train = make_blobs(1200, 4, 2.5, 0.05, data_rng);
  const auto test = make_blobs(300, 4, 2.5, 0.05, data_rng);
  const std::size_t n = 10;
  Rng r1(42), r2(42);
  const auto ring = evaluate_topology({"ring", net::Topology::ring(n), 1.0}, train,
                                      test, 4, 15, 5, 16, 0.1, 0.8, r1);
  net::Topology full(n);
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) full.add_edge(a, b);
  }
  const auto dense = evaluate_topology({"full", full, 1.0}, train, test, 4, 15, 5, 16,
                                       0.1, 0.8, r2);
  EXPECT_GT(dense.points.back().cumulative_bytes, ring.points.back().cumulative_bytes);
  // Dense consensus reaches high accuracy at least as fast (per round).
  EXPECT_GE(dense.points[5].accuracy + 0.05, ring.points[5].accuracy);
}

TEST(Cost, AdaptivePolicyEscalatesWhenStalled) {
  Rng data_rng(43);
  const auto train = make_blobs(1200, 4, 2.5, 0.05, data_rng);
  const auto test = make_blobs(300, 4, 2.5, 0.05, data_rng);
  const std::size_t n = 10;
  net::Topology full(n);
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) full.add_edge(a, b);
  }
  std::vector<NamedTopology> options = {{"ring", net::Topology::ring(n), 1.0},
                                        {"full", full, 1.0}};
  Rng rng(44);
  const auto res = cost_aware_train(options, train, test, 4, 40, 5, 16, 0.1, 0.9, 3,
                                    0.01, rng);
  EXPECT_GT(res.final_accuracy, 0.84);
  // Started cheap.
  EXPECT_EQ(res.active_topology_per_round.front(), 0u);
}

// --------------------------------------------------------------- Safety ----

struct SafetyFixture : ::testing::Test {
  MlpModel model{{2, 8, 1}};
  Dataset train, probe;

  void SetUp() override {
    Rng rng(51);
    train = make_blobs(800, 2, 4.0, 0.0, rng);
    probe = make_blobs(100, 2, 4.0, 0.0, rng);
    Rng init(52);
    model.randomize(init);
    Rng srng(53);
    model.sgd(train, 3000, 32, 0.2, srng);
  }
};

TEST_F(SafetyFixture, CertifiedFractionDecreasesWithEpsilon) {
  const auto r0 = certify_robustness(model, probe, 0.0);
  const auto r1 = certify_robustness(model, probe, 0.1);
  const auto r2 = certify_robustness(model, probe, 0.5);
  EXPECT_GT(r0.clean_accuracy, 0.9);
  EXPECT_NEAR(r0.certified_fraction, r0.clean_accuracy, 1e-9);  // eps=0: cert==clean
  EXPECT_GE(r0.certified_fraction, r1.certified_fraction);
  EXPECT_GE(r1.certified_fraction, r2.certified_fraction);
}

TEST_F(SafetyFixture, CertificationIsSound) {
  // Soundness: if certified at eps, every sampled perturbation within the
  // box keeps the prediction on the correct side.
  Rng rng(54);
  const double eps = 0.15;
  for (const auto& e : probe) {
    if (!certified_at(model, e.x, e.y, eps)) continue;
    for (int s = 0; s < 20; ++s) {
      Vec x = e.x;
      for (double& v : x) v += rng.uniform(-eps, eps);
      EXPECT_EQ(model.predict(x) > 0.5, e.y > 0.5);
    }
  }
}

TEST_F(SafetyFixture, MaxCertifiedEpsilonIsMonotoneBoundary) {
  const auto& e = probe.front();
  const double eps_max = max_certified_epsilon(model, e.x, e.y, 2.0);
  if (eps_max > 0.0) {
    EXPECT_TRUE(certified_at(model, e.x, e.y, eps_max * 0.9));
    EXPECT_FALSE(certified_at(model, e.x, e.y, eps_max + 0.01));
  }
}

TEST(Safety, MisclassifiedCenterHasZeroEpsilon) {
  MlpModel m({2, 4, 1});
  Rng rng(55);
  m.randomize(rng);
  // Find a point the random model misclassifies.
  Rng prng(56);
  for (int trial = 0; trial < 100; ++trial) {
    Vec x = {prng.uniform(-2, 2), prng.uniform(-2, 2)};
    const double y = m.predict(x) > 0.5 ? 0.0 : 1.0;  // force a mismatch
    EXPECT_DOUBLE_EQ(max_certified_epsilon(m, x, y), 0.0);
    break;
  }
}


// ----------------------------------------------------------- Adversarial ----

struct AdvFixture : ::testing::Test {
  MlpModel model{{2, 16, 1}};
  Dataset train, probe;

  void SetUp() override {
    Rng rng(61);
    train = make_blobs(1000, 2, 4.0, 0.0, rng);
    probe = make_blobs(200, 2, 4.0, 0.0, rng);
    Rng init(62);
    model.randomize(init);
    Rng srng(63);
    model.sgd(train, 4000, 32, 0.2, srng);
  }
};

TEST_F(AdvFixture, InputGradientMatchesFiniteDifferences) {
  const Example& e = probe.front();
  const Vec g = model.input_gradient(e);
  const double eps = 1e-6;
  for (std::size_t k = 0; k < e.x.size(); ++k) {
    Example ep = e, em = e;
    ep.x[k] += eps;
    em.x[k] -= eps;
    const double num = (model.loss({ep}) - model.loss({em})) / (2 * eps);
    EXPECT_NEAR(g[k], num, 1e-4) << "coord " << k;
  }
}

TEST_F(AdvFixture, FgsmStaysInEpsilonBall) {
  const Example& e = probe.front();
  const Vec adv = fgsm(model, e, 0.3);
  for (std::size_t k = 0; k < adv.size(); ++k) {
    EXPECT_LE(std::abs(adv[k] - e.x[k]), 0.3 + 1e-12);
  }
}

TEST_F(AdvFixture, PgdRespectsProjection) {
  PgdConfig cfg{.epsilon = 0.2, .step = 0.1, .iterations = 20};
  const Example& e = probe.front();
  const Vec adv = pgd(model, e, cfg);
  for (std::size_t k = 0; k < adv.size(); ++k) {
    EXPECT_LE(std::abs(adv[k] - e.x[k]), 0.2 + 1e-12);
  }
}

TEST_F(AdvFixture, PgdDegradesAccuracyMoreThanFgsm) {
  const double clean = accuracy(probe, [&](const Vec& x) { return model.predict(x); });
  std::size_t fgsm_ok = 0;
  for (const Example& e : probe) {
    if ((model.predict(fgsm(model, e, 0.5)) > 0.5) == (e.y > 0.5)) ++fgsm_ok;
  }
  const double fgsm_acc = static_cast<double>(fgsm_ok) / probe.size();
  const double pgd_acc = robust_accuracy_pgd(
      model, probe, {.epsilon = 0.5, .step = 0.1, .iterations = 20});
  EXPECT_LT(fgsm_acc, clean);
  EXPECT_LE(pgd_acc, fgsm_acc + 0.02);  // PGD at least as strong as FGSM
}

TEST(AdversarialTraining, ImprovesRobustAccuracyOnNonlinearTask) {
  // Well-separated blobs leave no room above the robust-Bayes ceiling, so
  // this test uses the rings task, where natural training yields a ragged
  // boundary that PGD exploits and adversarial training smooths.
  Rng rng(61);
  const auto train = make_rings(2500, 2, rng);
  const auto probe = make_rings(400, 2, rng);
  MlpModel model({2, 32, 1});
  Rng init(62);
  model.randomize(init);
  Rng srng(63);
  model.sgd(train, 10000, 32, 0.2, srng);

  const PgdConfig attack{.epsilon = 0.2, .step = 0.07, .iterations = 15};
  const double before = robust_accuracy_pgd(model, probe, attack);

  // Warm start from the clean model, then harden (standard curriculum:
  // adversarial examples against a random net are uninformative).
  MlpModel hardened({2, 32, 1});
  hardened.set_params(model.params());
  AdversarialTrainConfig cfg;
  cfg.steps = 6000;
  cfg.lr = 0.15;
  cfg.adversarial_fraction = 0.7;
  cfg.attack = attack;
  Rng arng(64);
  adversarial_train(hardened, train, cfg, arng);
  const double after = robust_accuracy_pgd(hardened, probe, attack);
  EXPECT_GT(after, before + 0.04);
  // Clean accuracy should not collapse.
  EXPECT_GT(accuracy(probe, [&](const Vec& x) { return hardened.predict(x); }), 0.85);
}

TEST_F(AdvFixture, CertifiedImpliesPgdCannotFlip) {
  // Soundness cross-check between the verifier and the attack: a point
  // certified at eps can never be flipped by PGD within eps.
  const double eps = 0.2;
  const PgdConfig attack{.epsilon = eps, .step = 0.05, .iterations = 20};
  for (const Example& e : probe) {
    if (!certified_at(model, e.x, e.y, eps)) continue;
    const Vec adv = pgd(model, e, attack);
    EXPECT_EQ(model.predict(adv) > 0.5, e.y > 0.5);
  }
}

}  // namespace
}  // namespace iobt::learn
