// Tests for assured synthesis: goals->means derivation, composition
// solvers, assurance quantification, trust gating, and repair.

#include <gtest/gtest.h>

#include "synthesis/composer.h"
#include "synthesis/decompose.h"
#include "synthesis/mission.h"
#include "things/population.h"

namespace iobt::synthesis {
namespace {

using sim::Rect;
using sim::Rng;
using sim::Vec2;

const Rect kArea{{0, 0}, {1000, 1000}};

Candidate make_sensor_candidate(std::uint32_t id, Vec2 pos, things::Modality m,
                                double range, double quality = 0.9,
                                double cost = 1.0) {
  Candidate c;
  c.asset = id;
  c.position = pos;
  c.sensors = {{m, range, quality, 0.01}};
  c.cost = cost;
  return c;
}

MissionSpec simple_camera_spec(double coverage = 0.5, std::size_t res = 4) {
  MissionSpec spec;
  spec.name = "test";
  spec.sensing.push_back({things::Modality::kCamera, kArea, coverage, 0.5, res});
  return spec;
}

int always_reachable(std::size_t) { return 1; }

// -------------------------------------------------------- Goals -> means ----

TEST(DeriveSpec, EveryGoalKindProducesRequirements) {
  for (GoalKind k : {GoalKind::kPersistentSurveillance, GoalKind::kTrackDispersedGroup,
                     GoalKind::kEvacuationSupport, GoalKind::kSoldierHealthMonitoring,
                     GoalKind::kDisasterRelief}) {
    const MissionSpec spec = derive_spec({k, kArea, 1.0});
    EXPECT_FALSE(spec.sensing.empty()) << to_string(k);
    EXPECT_GT(spec.compute.total_flops, 0.0) << to_string(k);
    EXPECT_GT(spec.comms.max_hops, 0) << to_string(k);
    EXPECT_EQ(spec.name, to_string(k));
  }
}

TEST(DeriveSpec, IntensityScalesCompute) {
  const auto lo = derive_spec({GoalKind::kPersistentSurveillance, kArea, 1.0});
  const auto hi = derive_spec({GoalKind::kPersistentSurveillance, kArea, 4.0});
  EXPECT_GT(hi.compute.total_flops, lo.compute.total_flops);
}

TEST(DeriveSpec, TrackingDemandsShorterLoopAndMoreTrust) {
  const auto track = derive_spec({GoalKind::kTrackDispersedGroup, kArea, 1.0});
  const auto relief = derive_spec({GoalKind::kDisasterRelief, kArea, 1.0});
  EXPECT_LT(track.comms.max_hops, relief.comms.max_hops);
  EXPECT_GT(track.min_member_trust, relief.min_member_trust);
}

// ------------------------------------------------------------ Composition ----

TEST(Composer, GreedyCoversRequirement) {
  // 4 cameras in the quadrant centers with big range: each covers its
  // quadrant; full coverage needs all four.
  std::vector<Candidate> cands;
  cands.push_back(make_sensor_candidate(0, {250, 250}, things::Modality::kCamera, 360));
  cands.push_back(make_sensor_candidate(1, {750, 250}, things::Modality::kCamera, 360));
  cands.push_back(make_sensor_candidate(2, {250, 750}, things::Modality::kCamera, 360));
  cands.push_back(make_sensor_candidate(3, {750, 750}, things::Modality::kCamera, 360));
  MissionSpec spec = simple_camera_spec(0.9, 4);
  Composer comp(spec, cands, always_reachable);
  const Composite c = comp.compose(Solver::kGreedy);
  EXPECT_TRUE(c.assurance.meets_spec);
  EXPECT_EQ(c.member_assets.size(), 4u);
  EXPECT_GE(c.assurance.sensing_coverage[0], 0.9);
}

TEST(Composer, InfeasibleWhenNoCapableCandidates) {
  std::vector<Candidate> cands;
  cands.push_back(make_sensor_candidate(0, {500, 500}, things::Modality::kSeismic, 400));
  Composer comp(simple_camera_spec(), cands, always_reachable);
  const Composite c = comp.compose(Solver::kGreedy);
  EXPECT_FALSE(c.assurance.meets_spec);
}

TEST(Composer, QualityFloorFiltersWeakSensors) {
  std::vector<Candidate> cands;
  cands.push_back(
      make_sensor_candidate(0, {500, 500}, things::Modality::kCamera, 900, 0.3));
  MissionSpec spec = simple_camera_spec(0.5);
  spec.sensing[0].min_quality = 0.5;  // candidate quality 0.3 is excluded
  Composer comp(spec, cands, always_reachable);
  EXPECT_FALSE(comp.compose().assurance.meets_spec);
}

TEST(Composer, TrustGateExcludesUntrusted) {
  std::vector<Candidate> cands;
  auto good = make_sensor_candidate(0, {500, 500}, things::Modality::kCamera, 900);
  auto bad = make_sensor_candidate(1, {500, 500}, things::Modality::kCamera, 900);
  bad.trust = 0.2;
  cands = {good, bad};
  MissionSpec spec = simple_camera_spec(0.5);
  spec.min_member_trust = 0.4;
  Composer comp(spec, cands, always_reachable);
  ASSERT_EQ(comp.admissible().size(), 1u);
  EXPECT_EQ(comp.admissible()[0], 0u);
  const Composite c = comp.compose();
  EXPECT_TRUE(c.assurance.meets_spec);
  EXPECT_EQ(c.member_assets, (std::vector<std::uint32_t>{0}));
}

TEST(Composer, CommsGateExcludesUnreachable) {
  std::vector<Candidate> cands;
  cands.push_back(make_sensor_candidate(0, {500, 500}, things::Modality::kCamera, 900));
  cands.push_back(make_sensor_candidate(1, {500, 500}, things::Modality::kCamera, 900));
  MissionSpec spec = simple_camera_spec(0.5);
  spec.comms.max_hops = 3;
  // Candidate 0 unreachable, candidate 1 is 2 hops away.
  Composer comp(spec, cands, [](std::size_t i) { return i == 0 ? -1 : 2; });
  ASSERT_EQ(comp.admissible().size(), 1u);
  EXPECT_EQ(comp.admissible()[0], 1u);
}

TEST(Composer, ComputeAndActuationRequirements) {
  std::vector<Candidate> cands;
  auto sensor = make_sensor_candidate(0, {500, 500}, things::Modality::kCamera, 900);
  sensor.compute.flops = 1e9;
  Candidate compute_node;
  compute_node.asset = 1;
  compute_node.position = {100, 100};
  compute_node.compute.flops = 1e12;
  Candidate actuator;
  actuator.asset = 2;
  actuator.position = {500, 500};
  actuator.actuators = {{things::ActuationKind::kSignage, 30.0}};
  cands = {sensor, compute_node, actuator};

  MissionSpec spec = simple_camera_spec(0.5);
  spec.compute.total_flops = 5e11;
  spec.actuation.push_back({things::ActuationKind::kSignage, kArea, 1});
  Composer comp(spec, cands, always_reachable);
  const Composite c = comp.compose();
  EXPECT_TRUE(c.assurance.meets_spec);
  EXPECT_EQ(c.member_assets.size(), 3u);  // needs all three roles
  EXPECT_GE(c.assurance.total_flops, 5e11);
  EXPECT_EQ(c.assurance.actuation_counts[0], 1u);
}

TEST(Composer, LocalSearchNeverWorseThanGreedy) {
  Rng rng(11);
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 40; ++i) {
    cands.push_back(make_sensor_candidate(
        i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, things::Modality::kCamera,
        rng.uniform(150, 400), 0.9, rng.uniform(1.0, 3.0)));
  }
  MissionSpec spec = simple_camera_spec(0.7, 8);
  Composer comp(spec, cands, always_reachable);
  const Composite g = comp.compose(Solver::kGreedy);
  const Composite ls = comp.compose(Solver::kLocalSearch);
  ASSERT_TRUE(g.assurance.meets_spec);
  ASSERT_TRUE(ls.assurance.meets_spec);
  double gc = 0, lc = 0;
  for (std::size_t m : g.member_indices) gc += cands[m].cost;
  for (std::size_t m : ls.member_indices) lc += cands[m].cost;
  EXPECT_LE(lc, gc + 1e-9);
}

TEST(Composer, ExactMatchesOrBeatsLocalSearchOnSmallInstances) {
  Rng rng(13);
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 12; ++i) {
    cands.push_back(make_sensor_candidate(
        i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, things::Modality::kCamera,
        rng.uniform(200, 500), 0.9, rng.uniform(1.0, 2.0)));
  }
  MissionSpec spec = simple_camera_spec(0.5, 5);
  Composer comp(spec, cands, always_reachable);
  const Composite ls = comp.compose(Solver::kLocalSearch);
  const Composite ex = comp.compose(Solver::kExact);
  if (ls.assurance.meets_spec) {
    ASSERT_TRUE(ex.assurance.meets_spec);
    double lc = 0, ec = 0;
    for (std::size_t m : ls.member_indices) lc += cands[m].cost;
    for (std::size_t m : ex.member_indices) ec += cands[m].cost;
    EXPECT_LE(ec, lc + 1e-9);
  }
}

TEST(Composer, RiskGateRejectsUntrustworthyComposite) {
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto c = make_sensor_candidate(i, {500, 500}, things::Modality::kCamera, 900);
    c.trust = 0.55;  // admissible but collectively risky
    c.certified = false;
    cands.push_back(c);
  }
  MissionSpec spec = simple_camera_spec(0.5);
  spec.min_member_trust = 0.5;
  spec.max_residual_risk = 0.2;  // strict assurance bar
  Composer comp(spec, cands, always_reachable);
  const Composite c = comp.compose();
  EXPECT_FALSE(c.assurance.meets_spec);
  EXPECT_GT(c.assurance.risk.residual_risk, 0.2);
}

TEST(Composer, RepairRestoresFeasibilityAfterLoss) {
  // Two redundant cameras per quadrant; kill one per quadrant.
  std::vector<Candidate> cands;
  std::uint32_t id = 0;
  for (double x : {250.0, 750.0}) {
    for (double y : {250.0, 750.0}) {
      cands.push_back(make_sensor_candidate(id++, {x, y}, things::Modality::kCamera, 360));
      cands.push_back(
          make_sensor_candidate(id++, {x + 10, y + 10}, things::Modality::kCamera, 360));
    }
  }
  MissionSpec spec = simple_camera_spec(0.9, 4);
  Composer comp(spec, cands, always_reachable);
  Composite c = comp.compose(Solver::kGreedy);
  ASSERT_TRUE(c.assurance.meets_spec);

  // Lose two selected members.
  std::vector<std::uint32_t> lost = {c.member_assets[0], c.member_assets[1]};
  const Composite repaired = comp.repair(c, lost);
  EXPECT_TRUE(repaired.assurance.meets_spec);
  for (std::uint32_t l : lost) {
    for (std::uint32_t m : repaired.member_assets) EXPECT_NE(m, l);
  }
}

TEST(Composer, RepairCheaperThanRecompose) {
  Rng rng(17);
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 60; ++i) {
    cands.push_back(make_sensor_candidate(
        i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, things::Modality::kCamera,
        rng.uniform(200, 400)));
  }
  MissionSpec spec = simple_camera_spec(0.8, 8);
  Composer comp(spec, cands, always_reachable);
  Composite c = comp.compose(Solver::kGreedy);
  ASSERT_TRUE(c.assurance.meets_spec);
  const std::uint64_t full_cost = c.evaluations;

  const Composite repaired = comp.repair(c, {c.member_assets[0]});
  EXPECT_TRUE(repaired.assurance.meets_spec);
  EXPECT_LT(repaired.evaluations, full_cost);
}

TEST(Composer, EvaluateEmptySetIsInfeasible) {
  std::vector<Candidate> cands;
  cands.push_back(make_sensor_candidate(0, {500, 500}, things::Modality::kCamera, 900));
  Composer comp(simple_camera_spec(0.5), cands, always_reachable);
  EXPECT_FALSE(comp.evaluate({}).meets_spec);
}

TEST(CandidatesFromWorld, MapsAssetsAndTrust) {
  sim::Simulator sim;
  net::Network net{sim, net::ChannelModel(2.0, 0.0), Rng(5)};
  things::World world{sim, net, kArea, Rng(6)};
  Rng r(1);
  const auto drone = world.add_asset(
      things::make_asset_template(things::DeviceClass::kDrone,
                                  things::Affiliation::kBlue, r),
      {100, 100}, things::radio_for_class(things::DeviceClass::kDrone));
  const auto phone = world.add_asset(
      things::make_asset_template(things::DeviceClass::kSmartphone,
                                  things::Affiliation::kGray, r),
      {200, 200}, things::radio_for_class(things::DeviceClass::kSmartphone));
  world.destroy_asset(phone);

  security::TrustRegistry trust;
  trust.record(drone, true);
  const auto cands = candidates_from_world(world, &trust);
  ASSERT_EQ(cands.size(), 1u);  // dead assets excluded
  EXPECT_EQ(cands[0].asset, drone);
  EXPECT_TRUE(cands[0].certified);
  EXPECT_GT(cands[0].trust, 0.5);
  EXPECT_DOUBLE_EQ(cands[0].cost, 3.0);
}


// -------------------------------------------------------- Decomposition ----

TEST(Decompose, TiledSolveIsFeasibleAndBoundedWorse) {
  Rng rng(31);
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 120; ++i) {
    cands.push_back(make_sensor_candidate(
        i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, things::Modality::kCamera,
        rng.uniform(150, 300)));
  }
  MissionSpec spec = simple_camera_spec(0.7, 12);
  Composer flat(spec, cands, always_reachable);
  const Composite f = flat.compose(Solver::kGreedy);
  ASSERT_TRUE(f.assurance.meets_spec);

  const auto d = compose_decomposed(spec, cands, always_reachable, 2);
  EXPECT_TRUE(d.composite.assurance.meets_spec);
  EXPECT_EQ(d.subproblems, 4u);
  // Duplication cost is bounded: at most ~2x the flat member count.
  EXPECT_LE(d.composite.member_assets.size(), 2 * f.member_assets.size());
  // Parallel critical path is smaller than the flat solve's total work.
  EXPECT_LT(d.critical_path_evaluations, f.evaluations);
}

TEST(Decompose, SingleTileMatchesFlatGreedyFeasibility) {
  Rng rng(33);
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 30; ++i) {
    cands.push_back(make_sensor_candidate(
        i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, things::Modality::kCamera,
        rng.uniform(200, 400)));
  }
  MissionSpec spec = simple_camera_spec(0.6, 6);
  Composer flat(spec, cands, always_reachable);
  const auto d = compose_decomposed(spec, cands, always_reachable, 1);
  EXPECT_EQ(flat.compose().assurance.meets_spec, d.composite.assurance.meets_spec);
}

TEST(Decompose, HandlesAggregateRequirements) {
  Rng rng(35);
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < 60; ++i) {
    auto c = make_sensor_candidate(i, {rng.uniform(0, 1000), rng.uniform(0, 1000)},
                                   things::Modality::kCamera, rng.uniform(200, 350));
    c.compute.flops = 1e9;
    cands.push_back(c);
  }
  Candidate edge;
  edge.asset = 1000;
  edge.position = {500, 500};
  edge.compute.flops = 1e12;
  cands.push_back(edge);

  MissionSpec spec = simple_camera_spec(0.6, 8);
  spec.compute.total_flops = 5e11;  // only the edge server satisfies this
  const auto d = compose_decomposed(spec, cands, always_reachable, 2);
  EXPECT_TRUE(d.composite.assurance.meets_spec);
  bool has_edge = false;
  for (auto a : d.composite.member_assets) has_edge |= (a == 1000);
  EXPECT_TRUE(has_edge);  // the top-up pass recruited the compute node
}

// Property sweep: greedy output is always feasible when the oracle says a
// feasible single-candidate solution exists.
class CoverageSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoverageSweep, GreedyFeasibleWhenGiantSensorExists) {
  std::vector<Candidate> cands;
  // One sensor covering everything plus noise candidates.
  cands.push_back(make_sensor_candidate(0, {500, 500}, things::Modality::kCamera, 800));
  Rng rng(23);
  for (std::uint32_t i = 1; i < 10; ++i) {
    cands.push_back(make_sensor_candidate(
        i, {rng.uniform(0, 1000), rng.uniform(0, 1000)}, things::Modality::kCamera, 100));
  }
  MissionSpec spec = simple_camera_spec(GetParam(), 6);
  Composer comp(spec, cands, always_reachable);
  EXPECT_TRUE(comp.compose().assurance.meets_spec) << "coverage=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fractions, CoverageSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace iobt::synthesis
