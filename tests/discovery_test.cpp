// Tests for discovery: directory lifecycle, probe/beacon/side-channel
// evidence channels, adversary identification, churn robustness, and
// challenge-response characterization.

#include <gtest/gtest.h>

#include "discovery/characterize.h"
#include "discovery/service.h"
#include "things/population.h"

namespace iobt::discovery {
namespace {

using sim::Duration;
using sim::Rng;
using sim::SimTime;

// ------------------------------------------------------------ Directory ----

TEST(AssetDirectory, UpsertTracksTimes) {
  AssetDirectory dir;
  auto& e1 = dir.upsert(5, SimTime::seconds(10));
  EXPECT_EQ(e1.first_seen, SimTime::seconds(10));
  auto& e2 = dir.upsert(5, SimTime::seconds(20));
  EXPECT_EQ(&e1, &e2);
  EXPECT_EQ(e2.first_seen, SimTime::seconds(10));
  EXPECT_EQ(e2.last_seen, SimTime::seconds(20));
  EXPECT_EQ(dir.size(), 1u);
}

TEST(AssetDirectory, PruneEvictsStale) {
  AssetDirectory dir(Duration::seconds(60));
  dir.upsert(1, SimTime::seconds(0));
  dir.upsert(2, SimTime::seconds(50));
  EXPECT_EQ(dir.prune(SimTime::seconds(100)), 1u);
  EXPECT_EQ(dir.find(1), nullptr);
  EXPECT_NE(dir.find(2), nullptr);
}

TEST(AssetDirectory, StandingClassification) {
  AssetDirectory dir;
  auto& coop = dir.upsert(1, SimTime::zero());
  coop.answered_probe = true;
  EXPECT_EQ(coop.standing(), Standing::kCooperative);

  auto& hider = dir.upsert(2, SimTime::zero());
  hider.side_channel_hit = true;
  EXPECT_EQ(hider.standing(), Standing::kSuspect);

  auto& liar = dir.upsert(3, SimTime::zero());
  liar.answered_probe = true;
  liar.challenges_failed = 3;
  liar.challenges_passed = 1;
  EXPECT_EQ(liar.standing(), Standing::kSuspect);

  auto& unknown = dir.upsert(4, SimTime::zero());
  EXPECT_EQ(unknown.standing(), Standing::kUnknown);
}

// --------------------------------------------------------------- Service ----

struct DiscoveryFixture : ::testing::Test {
  sim::Simulator sim;
  net::Network net{sim, net::ChannelModel(2.0, 0.0), Rng(5)};
  things::World world{sim, net, {{0, 0}, {800, 800}}, Rng(6)};
  net::Dispatcher disp{net};

  things::AssetId add(things::DeviceClass cls, things::Affiliation aff,
                      sim::Vec2 pos) {
    Rng r(world.asset_count() + 21);
    return world.add_asset(things::make_asset_template(cls, aff, r), pos,
                           things::radio_for_class(cls));
  }
};

TEST_F(DiscoveryFixture, ProbeDiscoversCooperativeAssets) {
  const auto collector = add(things::DeviceClass::kVehicle,
                             things::Affiliation::kBlue, {400, 400});
  const auto mote = add(things::DeviceClass::kSensorMote,
                        things::Affiliation::kBlue, {450, 400});
  const auto phone = add(things::DeviceClass::kSmartphone,
                         things::Affiliation::kGray, {350, 400});

  DiscoveryConfig cfg;
  cfg.probe_period = Duration::seconds(10);
  cfg.scan_period = Duration::seconds(1e7);  // effectively off
  DiscoveryService svc(world, disp, {collector}, cfg);
  svc.start();
  sim.run_until(SimTime::seconds(30));

  ASSERT_NE(svc.directory().find(mote), nullptr);
  ASSERT_NE(svc.directory().find(phone), nullptr);
  EXPECT_TRUE(svc.directory().find(mote)->answered_probe);
  EXPECT_EQ(svc.directory().find(mote)->standing(), Standing::kCooperative);
  EXPECT_EQ(svc.directory().find(mote)->claimed_class,
            things::DeviceClass::kSensorMote);
  EXPECT_GT(svc.recall(), 0.99);
}

TEST_F(DiscoveryFixture, RedAssetsInvisibleToProbesFoundBySideChannel) {
  // Vehicle collector has an RF-spectrum sensor (range 800).
  const auto collector = add(things::DeviceClass::kVehicle,
                             things::Affiliation::kBlue, {400, 400});
  const auto red = add(things::DeviceClass::kSmartphone,
                       things::Affiliation::kRed, {420, 400});

  DiscoveryConfig cfg;
  cfg.probe_period = Duration::seconds(10);
  cfg.scan_period = Duration::seconds(10);
  cfg.scan_window_s = 10.0;  // red side_channel_rate 0.5 -> p ~ 0.99 * quality
  DiscoveryService svc(world, disp, {collector}, cfg);
  svc.start();
  sim.run_until(SimTime::seconds(60));

  const DiscoveredAsset* e = svc.directory().find(red);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->answered_probe);
  EXPECT_TRUE(e->side_channel_hit);
  EXPECT_EQ(e->standing(), Standing::kSuspect);
  EXPECT_GT(svc.suspect_recall(), 0.99);
  EXPECT_GT(svc.suspect_precision(), 0.99);
}

TEST_F(DiscoveryFixture, BeaconsDiscoverWithoutProbing) {
  const auto collector = add(things::DeviceClass::kVehicle,
                             things::Affiliation::kBlue, {400, 400});
  const auto drone = add(things::DeviceClass::kDrone,
                         things::Affiliation::kBlue, {500, 400});

  DiscoveryConfig cfg;
  cfg.probe_period = Duration::seconds(1e7);  // probing off
  cfg.scan_period = Duration::seconds(1e7);   // scanning off
  DiscoveryService svc(world, disp, {collector}, cfg);
  svc.start();
  sim.run_until(SimTime::seconds(30));  // drone beacons every 5 s

  const DiscoveredAsset* e = svc.directory().find(drone);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->observed_beacon);
  EXPECT_FALSE(e->answered_probe);
  EXPECT_EQ(e->standing(), Standing::kCooperative);
}

TEST_F(DiscoveryFixture, DeadAssetsExpireFromDirectory) {
  const auto collector = add(things::DeviceClass::kVehicle,
                             things::Affiliation::kBlue, {400, 400});
  const auto mote = add(things::DeviceClass::kSensorMote,
                        things::Affiliation::kBlue, {450, 400});

  DiscoveryConfig cfg;
  cfg.probe_period = Duration::seconds(10);
  cfg.scan_period = Duration::seconds(1e7);
  cfg.staleness = Duration::seconds(40);
  DiscoveryService svc(world, disp, {collector}, cfg);
  svc.start();
  sim.run_until(SimTime::seconds(30));
  ASSERT_NE(svc.directory().find(mote), nullptr);

  world.destroy_asset(mote);
  sim.run_until(SimTime::seconds(120));
  EXPECT_EQ(svc.directory().find(mote), nullptr);  // pruned after staleness
  EXPECT_GT(svc.recall(), 0.99);                   // recall ignores dead assets
}

TEST_F(DiscoveryFixture, SybilsAdvertiseForgedClass) {
  const auto collector = add(things::DeviceClass::kVehicle,
                             things::Affiliation::kBlue, {400, 400});
  // A red smartphone that answers probes (Sybil behaviour).
  Rng r(99);
  auto sybil = things::make_asset_template(things::DeviceClass::kSmartphone,
                                           things::Affiliation::kRed, r);
  sybil.emissions.responds_to_probe = true;
  const auto sid = world.add_asset(
      std::move(sybil), {420, 400},
      things::radio_for_class(things::DeviceClass::kSmartphone));

  DiscoveryConfig cfg;
  cfg.probe_period = Duration::seconds(10);
  cfg.scan_period = Duration::seconds(1e7);
  DiscoveryService svc(world, disp, {collector}, cfg);
  svc.install_responder(sid);
  svc.start();
  sim.run_until(SimTime::seconds(30));

  const DiscoveredAsset* e = svc.directory().find(sid);
  ASSERT_NE(e, nullptr);
  // The forged advert claims a benign mote class, not a smartphone.
  EXPECT_EQ(e->claimed_class, things::DeviceClass::kSensorMote);
  EXPECT_EQ(e->standing(), Standing::kCooperative);  // fools naive discovery
}

// ------------------------------------------------------ Characterization ----

TEST_F(DiscoveryFixture, ChallengesConfirmHonestAndExposeLiars) {
  const auto collector = add(things::DeviceClass::kVehicle,
                             things::Affiliation::kBlue, {400, 400});
  const auto honest = add(things::DeviceClass::kSensorMote,
                          things::Affiliation::kBlue, {450, 400});
  // Sybil claims a seismic sensor it does not have.
  Rng r(99);
  auto sybil = things::make_asset_template(things::DeviceClass::kSmartphone,
                                           things::Affiliation::kRed, r);
  sybil.emissions.responds_to_probe = true;
  sybil.sensors.clear();  // no real sensors at all
  const auto liar = world.add_asset(
      std::move(sybil), {350, 400},
      things::radio_for_class(things::DeviceClass::kSmartphone));

  DiscoveryConfig dcfg;
  dcfg.probe_period = Duration::seconds(10);
  dcfg.scan_period = Duration::seconds(1e7);
  DiscoveryService svc(world, disp, {collector}, dcfg);
  svc.install_responder(liar);
  svc.start();

  security::TrustRegistry trust;
  CharacterizationConfig ccfg;
  ccfg.challenge_period = Duration::seconds(5);
  CharacterizationService chars(world, disp, svc, trust, collector, ccfg);
  chars.start();

  sim.run_until(SimTime::seconds(600));

  ASSERT_GT(chars.challenges_issued(), 20u);
  const DiscoveredAsset* he = svc.directory().find(honest);
  const DiscoveredAsset* le = svc.directory().find(liar);
  ASSERT_NE(he, nullptr);
  ASSERT_NE(le, nullptr);
  EXPECT_GT(he->challenges_passed, he->challenges_failed);
  EXPECT_GT(trust.score(honest), trust.score(liar));
  EXPECT_GT(trust.score(honest), 0.6);
  EXPECT_LT(trust.score(liar), 0.55);
}

// Churn sweep: discovery stays fresh as assets die and appear.
class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, RecallSurvivesChurn) {
  sim::Simulator sim;
  net::Network net{sim, net::ChannelModel(2.0, 0.0), Rng(5)};
  things::World world{sim, net, {{0, 0}, {600, 600}}, Rng(6)};
  net::Dispatcher disp{net};

  Rng r(7);
  const auto collector = world.add_asset(
      things::make_asset_template(things::DeviceClass::kEdgeServer,
                                  things::Affiliation::kBlue, r),
      {300, 300}, things::radio_for_class(things::DeviceClass::kEdgeServer));
  std::vector<things::AssetId> motes;
  for (int i = 0; i < 20; ++i) {
    motes.push_back(world.add_asset(
        things::make_asset_template(things::DeviceClass::kSensorMote,
                                    things::Affiliation::kBlue, r),
        {150.0 + 15 * i, 300.0},
        things::radio_for_class(things::DeviceClass::kSensorMote)));
  }

  DiscoveryConfig cfg;
  cfg.probe_period = Duration::seconds(10);
  cfg.scan_period = Duration::seconds(1e7);
  cfg.staleness = Duration::seconds(45);
  DiscoveryService svc(world, disp, {collector}, cfg);
  svc.start();

  // Kill one mote every `churn_period` seconds.
  const int churn_period = GetParam();
  for (std::size_t k = 0; k < 5; ++k) {
    sim.schedule_at(SimTime::seconds((k + 1) * churn_period),
                    [&world, &motes, k] { world.destroy_asset(motes[k]); });
  }
  sim.run_until(SimTime::seconds(5 * churn_period + 100));
  EXPECT_GT(svc.recall(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Periods, ChurnSweep, ::testing::Values(20, 60, 120));

}  // namespace
}  // namespace iobt::discovery
