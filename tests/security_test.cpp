// Tests for trust management, message authentication, risk scoring, and
// attack injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "security/attacks.h"
#include "security/auth.h"
#include "security/risk.h"
#include "security/trust.h"
#include "things/population.h"

namespace iobt::security {
namespace {

using sim::Rng;
using sim::SimTime;

// ---------------------------------------------------------------- Trust ----

TEST(BetaReputation, StartsAtPrior) {
  BetaReputation r;
  EXPECT_DOUBLE_EQ(r.score(), 0.5);
  EXPECT_DOUBLE_EQ(r.evidence(), 2.0);
}

TEST(BetaReputation, PositiveEvidenceRaisesScore) {
  BetaReputation r;
  for (int i = 0; i < 10; ++i) r.record(true);
  EXPECT_GT(r.score(), 0.9);
  for (int i = 0; i < 40; ++i) r.record(false);
  EXPECT_LT(r.score(), 0.3);
}

TEST(BetaReputation, WeightedEvidence) {
  BetaReputation a, b;
  a.record(true, 10.0);
  for (int i = 0; i < 10; ++i) b.record(true, 1.0);
  EXPECT_DOUBLE_EQ(a.score(), b.score());
}

TEST(BetaReputation, DecayMovesTowardPrior) {
  BetaReputation r;
  for (int i = 0; i < 50; ++i) r.record(true);
  const double before = r.score();
  r.decay(0.1);
  EXPECT_LT(r.score(), before);
  EXPECT_GT(r.score(), 0.5);  // still above prior
  r.decay(0.0);
  EXPECT_DOUBLE_EQ(r.score(), 0.5);  // full forgetting = prior
}

TEST(TrustRegistry, UnknownSubjectsGetPrior) {
  TrustRegistry t;
  EXPECT_DOUBLE_EQ(t.score(42), 0.5);
  EXPECT_DOUBLE_EQ(t.evidence(42), 2.0);
  EXPECT_TRUE(t.trusted(42));  // prior sits exactly at the 0.5 threshold
}

TEST(TrustRegistry, ThresholdGatesTrusted) {
  TrustRegistry t(0.7);
  t.record(1, true);
  t.record(1, true);
  t.record(1, true);
  EXPECT_GT(t.score(1), 0.7);
  EXPECT_TRUE(t.trusted(1));
  t.record(2, false);
  EXPECT_FALSE(t.trusted(2));
}

TEST(TrustRegistry, DecayAllAffectsEverySubject) {
  TrustRegistry t;
  for (int i = 0; i < 20; ++i) t.record(1, true);
  for (int i = 0; i < 20; ++i) t.record(2, false);
  const double s1 = t.score(1), s2 = t.score(2);
  t.decay_all(0.5);
  EXPECT_LT(t.score(1), s1);
  EXPECT_GT(t.score(2), s2);
}

// ----------------------------------------------------------------- Auth ----

TEST(Auth, SignVerifyRoundTrip) {
  KeyAuthority ka(1);
  const Key k = ka.mint();
  ka.grant(k.id, 7);
  const AuthTag tag = ka.sign(k.id, 7, "observation:cell=3");
  EXPECT_TRUE(ka.verify(tag, 7, "observation:cell=3"));
}

TEST(Auth, TamperedContentFailsVerification) {
  KeyAuthority ka(1);
  const Key k = ka.mint();
  ka.grant(k.id, 7);
  const AuthTag tag = ka.sign(k.id, 7, "observation:cell=3");
  EXPECT_FALSE(ka.verify(tag, 7, "observation:cell=4"));
}

TEST(Auth, ImpersonationFailsVerification) {
  KeyAuthority ka(1);
  const Key k = ka.mint();
  ka.grant(k.id, 7);
  const AuthTag tag = ka.sign(k.id, 7, "msg");
  EXPECT_FALSE(ka.verify(tag, 8, "msg"));  // claims to be sender 8
}

TEST(Auth, NonHolderCannotSign) {
  KeyAuthority ka(1);
  const Key k = ka.mint();
  const AuthTag tag = ka.sign(k.id, 9, "msg");  // 9 never granted
  EXPECT_EQ(tag.tag, 0u);
  EXPECT_FALSE(ka.verify(tag, 9, "msg"));
}

TEST(Auth, RevocationStopsSigning) {
  KeyAuthority ka(1);
  const Key k = ka.mint();
  ka.grant(k.id, 7);
  ka.revoke(k.id, 7);
  EXPECT_FALSE(ka.holds(k.id, 7));
  EXPECT_EQ(ka.sign(k.id, 7, "msg").tag, 0u);
}

TEST(Auth, CapturedKeySignsValidly) {
  // Key compromise is modelled by granting the key to the attacker: the
  // MAC itself verifies — the trust layer, not crypto, must catch this.
  KeyAuthority ka(1);
  const Key k = ka.mint();
  ka.grant(k.id, 666);
  const AuthTag tag = ka.sign(k.id, 666, "forged report");
  EXPECT_TRUE(ka.verify(tag, 666, "forged report"));
}

TEST(Auth, DistinctKeysProduceDistinctTags) {
  KeyAuthority ka(1);
  const Key k1 = ka.mint(), k2 = ka.mint();
  ka.grant(k1.id, 7);
  ka.grant(k2.id, 7);
  EXPECT_NE(ka.sign(k1.id, 7, "m").tag, ka.sign(k2.id, 7, "m").tag);
}

// ----------------------------------------------------------------- Risk ----

TEST(Risk, NoMembersNoRisk) {
  const RiskReport r = assess_risk({});
  EXPECT_DOUBLE_EQ(r.residual_risk, 0.0);
}

TEST(Risk, UntrustedMembersRaiseInfiltrationRisk) {
  RiskInputs high_trust{.member_trust = {0.99, 0.99, 0.99}};
  RiskInputs low_trust{.member_trust = {0.6, 0.6, 0.6}};
  EXPECT_LT(assess_risk(high_trust).infiltration_risk,
            assess_risk(low_trust).infiltration_risk);
}

TEST(Risk, ComponentsComposeMonotonically) {
  RiskInputs base{.member_trust = {0.9, 0.9}};
  RiskInputs with_spof = base;
  with_spof.spof_fraction = 0.5;
  RiskInputs with_both = with_spof;
  with_both.uncertified_fraction = 0.8;
  const double r0 = assess_risk(base).residual_risk;
  const double r1 = assess_risk(with_spof).residual_risk;
  const double r2 = assess_risk(with_both).residual_risk;
  EXPECT_LT(r0, r1);
  EXPECT_LT(r1, r2);
  EXPECT_LE(r2, 1.0);
}

TEST(Risk, CombineIndependent) {
  EXPECT_DOUBLE_EQ(combine_independent({0.0, 0.0}), 0.0);
  EXPECT_NEAR(combine_independent({0.5, 0.5}), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(combine_independent({1.0, 0.3}), 1.0);
}

// -------------------------------------------------------------- Attacks ----

struct AttackFixture : ::testing::Test {
  sim::Simulator sim;
  net::ChannelModel channel{2.0, 0.0};
  net::Network net{sim, channel, Rng(5)};
  things::World world{sim, net, {{0, 0}, {1000, 1000}}, Rng(6)};
  AttackInjector attacks{world};

  things::AssetId add_mote(sim::Vec2 pos) {
    Rng r(world.asset_count() + 1);
    return world.add_asset(
        things::make_asset_template(things::DeviceClass::kSensorMote,
                                    things::Affiliation::kBlue, r),
        pos, things::radio_for_class(things::DeviceClass::kSensorMote));
  }
};

TEST_F(AttackFixture, NodeKillFiresAtScheduledTime) {
  const auto a = add_mote({100, 100});
  attacks.schedule_node_kill(a, SimTime::seconds(50));
  sim.run_until(SimTime::seconds(49));
  EXPECT_TRUE(world.asset_live(a));
  sim.run_until(SimTime::seconds(51));
  EXPECT_FALSE(world.asset_live(a));
  ASSERT_EQ(attacks.log().size(), 1u);
  EXPECT_EQ(attacks.log()[0].type, "node_kill");
}

TEST_F(AttackFixture, CaptureFlipsAffiliationAndSilences) {
  const auto a = add_mote({100, 100});
  attacks.schedule_capture(a, SimTime::seconds(10), 0.15);
  sim.run_until(SimTime::seconds(11));
  const auto& asset = world.asset(a);
  EXPECT_EQ(asset.affiliation, things::Affiliation::kRed);
  EXPECT_FALSE(asset.emissions.responds_to_probe);
  EXPECT_DOUBLE_EQ(asset.report_reliability, 0.15);
  EXPECT_TRUE(world.asset_live(a));  // capture does not kill
}

TEST_F(AttackFixture, MassKillRespectsPredicateAndFraction) {
  for (int i = 0; i < 100; ++i) add_mote({static_cast<double>(i), 0});
  attacks.schedule_mass_kill(
      0.5, SimTime::seconds(5),
      [](const things::Asset& a) { return a.device_class == things::DeviceClass::kSensorMote; },
      Rng(77));
  sim.run_until(SimTime::seconds(6));
  const std::size_t live = world.live_asset_count();
  EXPECT_GT(live, 30u);
  EXPECT_LT(live, 70u);
}

TEST_F(AttackFixture, SybilCreatesDeceptiveAssets) {
  attacks.schedule_sybil(5, SimTime::seconds(3), Rng(9));
  sim.run_until(SimTime::seconds(4));
  ASSERT_EQ(attacks.sybil_ids().size(), 5u);
  for (const auto id : attacks.sybil_ids()) {
    const auto& a = world.asset(id);
    EXPECT_EQ(a.affiliation, things::Affiliation::kRed);
    EXPECT_TRUE(a.emissions.responds_to_probe);  // pretends to cooperate
    EXPECT_GT(a.emissions.beacon_period_s, 0.0);
    EXPECT_LT(a.report_reliability, 0.5);
  }
}

TEST_F(AttackFixture, JammingRegistersChannelJammer) {
  attacks.schedule_jamming({500, 500}, 200, SimTime::seconds(10), SimTime::seconds(20));
  ASSERT_EQ(net.channel().jammers().size(), 1u);
  const auto& j = net.channel().jammers()[0];
  EXPECT_TRUE(j.active_at(SimTime::seconds(15)));
  EXPECT_FALSE(j.active_at(SimTime::seconds(25)));
  sim.run_until(SimTime::seconds(30));
  ASSERT_EQ(attacks.log().size(), 2u);
  EXPECT_EQ(attacks.log()[0].type, "jamming_on");
  EXPECT_EQ(attacks.log()[1].type, "jamming_off");
}

// --------------------------------------- Injector reentrancy regressions ----

// Regression (heap-use-after-free under ASan): a down-hook that recruits a
// replacement asset during a mass kill. world.add_asset() grows the asset
// vector, which may reallocate it mid-kill; the injector must therefore
// walk the population by index with a count snapshotted before the sweep —
// a range-for holding `const auto& a` across destroy_asset() dereferences
// freed memory as soon as the vector moves. Replacements also must not be
// swept (they arrived after the attack fired).
TEST_F(AttackFixture, MassKillSurvivesDownHookRecruitingReplacements) {
  for (int i = 0; i < 64; ++i) add_mote({static_cast<double>(i * 10), 0});
  const std::size_t initial = world.asset_count();
  std::size_t recruited = 0;
  world.on_asset_down([&](things::AssetId) {
    // One replacement per casualty: repeated reallocation pressure while
    // the kill sweep is still iterating.
    add_mote({500, 500});
    ++recruited;
  });
  attacks.schedule_mass_kill(
      0.5, SimTime::seconds(5),
      [](const things::Asset& a) {
        return a.device_class == things::DeviceClass::kSensorMote;
      },
      Rng(41));
  sim.run_until(SimTime::seconds(6));
  EXPECT_GT(recruited, 0u);
  EXPECT_EQ(world.asset_count(), initial + recruited);
  // Every replacement arrived after the fraction draw and is alive.
  for (std::size_t i = initial; i < world.asset_count(); ++i) {
    EXPECT_TRUE(world.asset_live(static_cast<things::AssetId>(i)));
  }
}

// Regression: node_kill and mass_kill overlapping on the same asset (and a
// re-entrant destroy from a down-hook) must fire the down-hooks exactly
// once per asset — destroy_asset is idempotent on already-dead assets.
TEST_F(AttackFixture, OverlappingKillsFireDownHooksOncePerAsset) {
  const auto victim = add_mote({100, 100});
  for (int i = 0; i < 30; ++i) add_mote({static_cast<double>(i * 30), 200});
  std::vector<int> downs(world.asset_count(), 0);
  world.on_asset_down([&](things::AssetId id) {
    ++downs[id];
    world.destroy_asset(id);  // re-entrant kill of an already-dead asset
  });
  // Both attacks land at t=5 s and can both select `victim`.
  attacks.schedule_node_kill(victim, SimTime::seconds(5));
  attacks.schedule_mass_kill(
      1.0, SimTime::seconds(5), [](const things::Asset&) { return true; },
      Rng(43));
  sim.run_until(SimTime::seconds(6));
  EXPECT_FALSE(world.asset_live(victim));
  for (std::size_t i = 0; i < downs.size(); ++i) {
    EXPECT_EQ(downs[i], world.asset_alive(static_cast<things::AssetId>(i)) ? 0 : 1)
        << "asset " << i;
  }
}

TEST_F(AttackFixture, RegionKillOnlyStrikesInsideTheRegion) {
  // Four motes inside the strike box, four well outside it.
  std::vector<things::AssetId> inside, outside;
  for (int i = 0; i < 4; ++i) {
    inside.push_back(add_mote({100.0 + 20.0 * i, 100.0}));
    outside.push_back(add_mote({800.0, 800.0 + 20.0 * i}));
  }
  const sim::Rect strike{{0, 0}, {300, 300}};
  // fraction = 1: every live asset inside the region dies; nothing outside
  // may be touched regardless of the per-victim draws.
  attacks.schedule_region_kill(strike, 1.0, SimTime::seconds(5), Rng(17));
  sim.run_until(SimTime::seconds(6));
  for (const auto id : inside) EXPECT_FALSE(world.asset_live(id));
  for (const auto id : outside) EXPECT_TRUE(world.asset_live(id));
  ASSERT_EQ(attacks.log().size(), 1u);
  EXPECT_EQ(attacks.log()[0].type, "region_kill");
  EXPECT_EQ(attacks.log()[0].detail, "killed=4");

  // Determinism: an identical stack replays the identical victim set at
  // a sub-1.0 fraction (where the per-victim Bernoulli draws matter).
  const auto run_partial = [] {
    sim::Simulator sim2;
    net::ChannelModel channel2{2.0, 0.0};
    net::Network net2{sim2, channel2, Rng(5)};
    things::World world2{sim2, net2, {{0, 0}, {1000, 1000}}, Rng(6)};
    AttackInjector attacks2{world2};
    Rng r(1);
    for (int i = 0; i < 16; ++i) {
      world2.add_asset(
          things::make_asset_template(things::DeviceClass::kSensorMote,
                                      things::Affiliation::kBlue, r),
          {50.0 + 10.0 * i, 60.0},
          things::radio_for_class(things::DeviceClass::kSensorMote));
    }
    attacks2.schedule_region_kill({{0, 0}, {500, 500}}, 0.5,
                                  SimTime::seconds(5), Rng(17));
    sim2.run_until(SimTime::seconds(6));
    std::vector<bool> alive;
    for (std::size_t i = 0; i < world2.asset_count(); ++i) {
      alive.push_back(world2.asset_live(static_cast<things::AssetId>(i)));
    }
    return alive;
  };
  const std::vector<bool> first = run_partial();
  EXPECT_EQ(first, run_partial());
  // A 0.5 fraction should kill some but typically not all of the 16.
  const auto dead = std::count(first.begin(), first.end(), false);
  EXPECT_GT(dead, 0);
  EXPECT_LT(dead, 16);
}

// The injector forks a child stream per scheduled row (salted by the row
// index), so passing one Rng by value to several schedule_* calls does not
// duplicate streams: two mass kills armed from the same generator state
// must draw different victim sets, and a Sybil wave scheduled twice from
// the same generator must place its fakes differently.
TEST_F(AttackFixture, ScheduleCallsFromOneRngGetIndependentStreams) {
  const Rng shared(99);  // same state handed to every schedule call
  // Two Sybil waves armed from identical generator state. Byte-copied
  // streams would run the same position/identity draw sequence twice and
  // spawn both waves at identical coordinates; per-row child streams must
  // place them differently.
  attacks.schedule_sybil(3, SimTime::seconds(8), shared);
  attacks.schedule_sybil(3, SimTime::seconds(9), shared);
  sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(attacks.sybil_ids().size(), 6u);
  bool any_position_differs = false;
  for (int k = 0; k < 3; ++k) {
    const sim::Vec2 p1 = world.asset_position(attacks.sybil_ids()[k]);
    const sim::Vec2 p2 = world.asset_position(attacks.sybil_ids()[k + 3]);
    if (p1.x != p2.x || p1.y != p2.y) any_position_differs = true;
  }
  EXPECT_TRUE(any_position_differs);

  // And the same scheduling code is reproducible: a second stack built
  // identically places its waves at exactly the same coordinates.
  struct TwinStack {
    sim::Simulator sim;
    net::ChannelModel channel{2.0, 0.0};
    net::Network net{sim, channel, Rng(5)};
    things::World world{sim, net, {{0, 0}, {1000, 1000}}, Rng(6)};
    AttackInjector attacks{world};
  };
  TwinStack twin;
  twin.attacks.schedule_sybil(3, SimTime::seconds(8), shared);
  twin.attacks.schedule_sybil(3, SimTime::seconds(9), shared);
  twin.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(twin.attacks.sybil_ids().size(), 6u);
  for (int k = 0; k < 6; ++k) {
    const sim::Vec2 p = world.asset_position(attacks.sybil_ids()[k]);
    const sim::Vec2 q = twin.world.asset_position(twin.attacks.sybil_ids()[k]);
    EXPECT_EQ(p.x, q.x);
    EXPECT_EQ(p.y, q.y);
  }
}

}  // namespace
}  // namespace iobt::security
