#pragma once
// Shared checkpoint/branch test scenario: a full substrate stack (kernel,
// network, world, attack injector) plus a TrafficDriver — a test-local
// checkpoint participant that models what a scenario-layer service must do
// to survive restore (re-arm its periodic loop, re-install its receive
// handlers). Used by checkpoint_test.cpp (unit-level round trips) and
// property_test.cpp (digest-identity sweeps).

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "net/network.h"
#include "security/attacks.h"
#include "sim/checkpoint.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "things/mobility.h"
#include "things/population.h"
#include "things/world.h"

namespace iobt::testing {

/// Periodic broadcast driver, checkpoint-participant style: its schedule
/// cursor (next fire time + round counter) rides the Snapshot, its armed
/// event is re-armed under the original seq, and restore re-installs the
/// receive handlers on every node — including endpoints that exist only in
/// the snapshot (Sybils injected before the save never pass through a
/// fresh stack's construction code). Received-frame counts are recorded
/// into the Network's own MetricsRegistry so they round-trip with it.
class TrafficDriver final : public sim::Checkpointable {
 public:
  TrafficDriver(sim::Simulator& sim, net::Network& net, sim::Duration period)
      : sim_(sim), net_(net), period_(period) {
    tag_ = sim_.intern("test.traffic");
    sim_.checkpoint().register_participant(this);
  }
  ~TrafficDriver() override {
    sim_.cancel(event_);
    sim_.checkpoint().unregister(this);
  }

  void start() {
    started_ = true;
    install_handlers();
    next_at_ = sim_.now() + period_;
    arm();
  }

  std::string_view checkpoint_key() const override { return "test.traffic"; }

  void save(sim::Snapshot& snap, const std::string& key) const override {
    snap.put(key, State{next_at_, round_, sim_.pending_seq(event_), started_});
  }

  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override {
    sim_.cancel(event_);
    event_ = sim::kNoEvent;
    const auto& st = snap.get<State>(key);
    next_at_ = st.next_at;
    round_ = st.round;
    started_ = st.started;
    if (started_) {
      install_handlers();
      if (st.seq != 0) {
        armer.rearm(next_at_, st.seq, [this] { run(); }, tag_, &event_);
      }
    }
  }

 private:
  struct State {
    sim::SimTime next_at;
    std::uint64_t round = 0;
    std::uint64_t seq = 0;
    bool started = false;
  };

  void install_handlers() {
    for (net::NodeId n = 0; n < net_.node_count(); ++n) {
      net_.set_handler(n, [this](const net::Message&) {
        net_.metrics().count("test.received");
      });
    }
  }

  void arm() {
    event_ = sim_.schedule_at(next_at_, [this] { run(); }, tag_);
  }

  void run() {
    event_ = sim::kNoEvent;
    const std::size_t n = net_.node_count();
    if (n > 0) {
      const auto src = static_cast<net::NodeId>(round_ % n);
      if (net_.node_up(src)) {
        net_.broadcast(src, net::Message{.kind = "hello", .size_bytes = 24});
      }
      // New endpoints (Sybil waves) join the listener set as they appear.
      if (nodes_with_handlers_ < n) {
        for (net::NodeId m = static_cast<net::NodeId>(nodes_with_handlers_);
             m < n; ++m) {
          net_.set_handler(m, [this](const net::Message&) {
            net_.metrics().count("test.received");
          });
        }
      }
    }
    nodes_with_handlers_ = n;
    ++round_;
    next_at_ = next_at_ + period_;
    arm();
  }

  sim::Simulator& sim_;
  net::Network& net_;
  sim::Duration period_;
  sim::TagId tag_ = sim::kUntagged;
  sim::SimTime next_at_;
  std::uint64_t round_ = 0;
  std::size_t nodes_with_handlers_ = 0;
  sim::EventId event_ = sim::kNoEvent;
  bool started_ = false;
};

/// One adversarial scenario stack, built deterministically from a seed.
/// The attack campaign is arranged so an interesting snapshot time exists:
/// jamming covers [40, 80) s, Sybil waves land at 30 s and 70 s, a mass
/// kill at 90 s and a targeted kill at 100 s — so saving at t in (40, 70)
/// is simultaneously mid-jamming-window and mid-sybil-wave, with the
/// second wave, both kills and the jamming-off edge still pending.
struct CheckpointScenario {
  sim::Simulator sim;
  net::Network net;
  things::World world;
  security::AttackInjector attacks;
  TrafficDriver traffic;

  explicit CheckpointScenario(std::uint64_t seed, bool use_grid = true,
                              std::size_t population = 36)
      : net(sim, net::ChannelModel(2.0, 0.2), sim::Rng(seed ^ 0xBADC0DEULL)),
        world(sim, net, {{0, 0}, {900, 900}}, sim::Rng(seed)),
        attacks(world),
        traffic(sim, net, sim::Duration::millis(500)) {
    net.set_spatial_index_enabled(use_grid);
    sim::Rng layout(seed * 2654435761ULL + 1);
    for (std::size_t i = 0; i < population; ++i) {
      sim::Rng maker = layout.child(i);
      things::AssetSpec a = things::make_asset_template(
          things::DeviceClass::kSensorMote, things::Affiliation::kBlue, maker);
      a.mobility = std::make_shared<things::RandomWaypoint>(
          world.area(), 4.0, 2.0, maker.child(0x30B11E));
      world.add_asset(std::move(a),
                      {maker.uniform(0, 900), maker.uniform(0, 900)},
                      things::radio_for_class(things::DeviceClass::kSensorMote));
    }
    world.start(sim::Duration::seconds(1));
    traffic.start();
    attacks.schedule_jamming({450, 450}, 260, sim::SimTime::seconds(40),
                             sim::SimTime::seconds(80), 0.9);
    attacks.schedule_sensor_blackout(things::Modality::kCamera,
                                     {{200, 200}, {700, 700}},
                                     sim::SimTime::seconds(35),
                                     sim::SimTime::seconds(75), 0.8);
    sim::Rng attack_rng(seed ^ 0x5EC5EC5ECULL);
    attacks.schedule_sybil(4, sim::SimTime::seconds(30), attack_rng);
    attacks.schedule_sybil(3, sim::SimTime::seconds(70), attack_rng);
    attacks.schedule_mass_kill(
        0.25, sim::SimTime::seconds(90),
        [](const things::Asset& a) {
          return a.device_class == things::DeviceClass::kSensorMote;
        },
        attack_rng);
    attacks.schedule_node_kill(static_cast<things::AssetId>(population / 2),
                               sim::SimTime::seconds(100));
  }

  /// Bit-content digest over everything observable: network metrics
  /// (deliveries, drops, test.received, latency reservoirs), asset
  /// liveness + exact positions, attack log, and the clock.
  std::uint64_t digest() const {
    std::uint64_t h = net.metrics().digest();
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    const auto mix_double = [&](double x) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &x, sizeof bits);
      mix(bits);
    };
    mix(static_cast<std::uint64_t>(sim.now().nanos()));
    mix(world.asset_count());
    for (const things::Asset& a : world.assets()) {
      mix(world.asset_alive(a.id) ? 1 : 2);
      mix(static_cast<std::uint64_t>(a.affiliation));
      const sim::Vec2 p = net.position(a.node);
      mix_double(p.x);
      mix_double(p.y);
      mix_double(a.report_reliability);
    }
    mix(attacks.log().size());
    for (const auto& e : attacks.log()) {
      mix(sim::fnv1a(e.type));
      mix(static_cast<std::uint64_t>(e.at.nanos()));
      mix(sim::fnv1a(e.detail));
    }
    mix(attacks.sybil_ids().size());
    return h;
  }
};

}  // namespace iobt::testing
