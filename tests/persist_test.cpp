// Durable snapshot persistence (sim/wire.h, CheckpointRegistry
// serialize/deserialize, serve/snapshot_store.h, and the CampaignService
// disk tier): byte-stable golden images, load-then-branch digest identity
// across worker counts, corrupt/truncated/mismatched files rejected back
// to a cold simulation, and journal append durability failures surfaced.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "dissem/scenario.h"
#include "serve/serve.h"
#include "serve/snapshot_store.h"
#include "sim/runner.h"
#include "sim/wire.h"

namespace iobt {
namespace {

using serve::CampaignService;
using serve::Query;
using serve::SnapshotStore;

dissem::DissemSpec tiny_spec() {
  dissem::DissemSpec spec;
  spec.name = "persist-tiny";
  dissem::LayerSpec l;
  l.layer = net::kLayerGround;
  l.nodes = 12;
  l.gateways = 2;
  l.radio.range_m = 150.0;
  l.radio.data_rate_bps = 1e6;
  l.radio.base_loss = 0.01;
  l.device = things::DeviceClass::kSensorMote;
  l.speed_mps = 3.0;
  spec.layers = {l};
  spec.mobility = dissem::MobilityKind::kWaypoint;
  spec.attack = dissem::AttackCampaign::kNone;
  spec.intensity = 0.0;
  spec.area = sim::Rect{{0, 0}, {300, 300}};
  spec.horizon_s = 20.0;
  spec.seed_time_s = 2.0;
  return spec;
}

Query tiny_query(std::uint64_t seed = 42,
                 dissem::AttackCampaign attack = dissem::AttackCampaign::kNone,
                 double intensity = 0.0) {
  Query q;
  q.spec = tiny_spec();
  q.seed = seed;
  q.branch_time_s = 15.0;
  q.delta.attack = attack;
  q.delta.intensity = intensity;
  return q;
}

/// Fresh per-test scratch directory under the build tree.
std::string scratch_dir(const std::string& name) {
  const std::string dir = "persist_test_scratch/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

/// Simulates `q`'s prefix on a fresh stack and returns its wire image.
std::string prefix_wire_image(const Query& q) {
  dissem::DissemScenario s(q.spec, q.seed);
  s.sim.run_until(sim::SimTime::seconds(q.branch_time_s));
  const sim::Snapshot snap = s.sim.checkpoint().save(serve::prefix_hash(q));
  std::string wire;
  EXPECT_TRUE(s.sim.checkpoint().serialize_snapshot(snap, wire));
  return wire;
}

// ----------------------------------------------------------- Wire format ----

TEST(WirePersistence, PrimitivesRoundTripExactly) {
  sim::WireWriter w;
  const double third = 1.0 / 3.0;
  w.u64(0).u64(~0ULL).i64(-1).i64(42).boolean(true).boolean(false);
  w.f64(third).f64(-0.0).f64(1e308);
  w.bytes("").bytes(std::string("a b\nc\0d", 7));
  sim::WireReader r(w.out());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), ~0ULL);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.i64(), 42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  // Bit patterns, not values: -0.0 and the full double range survive.
  EXPECT_EQ(r.f64(), third);
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_EQ(r.f64(), 1e308);
  EXPECT_EQ(r.bytes(), "");
  EXPECT_EQ(r.bytes(), std::string("a b\nc\0d", 7));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(WirePersistence, ReaderFailsSoftOnMalformedInput) {
  sim::WireReader r("not-a-number ");
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  // Latched: every later read answers zero instead of touching the input.
  EXPECT_EQ(r.i64(), 0);
  EXPECT_EQ(r.bytes(), "");
}

// ------------------------------------------------------ Registry images ----

TEST(RegistrySerialization, GoldenImageIsByteStableAcrossStacks) {
  // Two independently built stacks of the same scenario produce the SAME
  // bytes: the image depends only on (spec, seed, branch), never on
  // pointer values, map iteration order, or which stack wrote it.
  const Query q = tiny_query();
  const std::string a = prefix_wire_image(q);
  const std::string b = prefix_wire_image(q);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(RegistrySerialization, DecodeReencodesToIdenticalBytes) {
  const Query q = tiny_query();
  const std::string wire = prefix_wire_image(q);
  dissem::DissemScenario s(q.spec, q.seed);
  auto snap = s.sim.checkpoint().deserialize_snapshot(wire);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->prefix_hash(), serve::prefix_hash(q));
  std::string again;
  ASSERT_TRUE(s.sim.checkpoint().serialize_snapshot(*snap, again));
  EXPECT_EQ(wire, again);
}

TEST(RegistrySerialization, LoadThenBranchIsDigestIdenticalToInMemoryBranch) {
  const Query q = tiny_query(42, dissem::AttackCampaign::kJamming, 0.6);
  const std::uint64_t reference = CampaignService::run_uncached(q).digest;

  // In-memory branch: save at the branch point, restore into a fresh
  // stack, run out the horizon.
  std::string wire;
  std::uint64_t in_memory = 0;
  {
    dissem::DissemScenario s(q.spec, q.seed);
    s.sim.run_until(sim::SimTime::seconds(q.branch_time_s));
    const sim::Snapshot snap = s.sim.checkpoint().save(serve::prefix_hash(q));
    ASSERT_TRUE(s.sim.checkpoint().serialize_snapshot(snap, wire));
    dissem::DissemScenario b(q.spec, q.seed);
    b.sim.checkpoint().restore(snap);
    serve::apply_delta(b, q);
    b.sim.run_until(sim::SimTime::seconds(q.spec.horizon_s));
    in_memory = b.outcome().digest;
  }
  EXPECT_EQ(in_memory, reference);

  // Wire branch: the ORIGINAL stack is gone; a new stack decodes the
  // bytes and branches. Must be bit-identical to both references.
  dissem::DissemScenario b(q.spec, q.seed);
  auto snap = b.sim.checkpoint().deserialize_snapshot(wire);
  ASSERT_TRUE(snap.has_value());
  b.sim.checkpoint().restore(*snap);
  serve::apply_delta(b, q);
  b.sim.run_until(sim::SimTime::seconds(q.spec.horizon_s));
  EXPECT_EQ(b.outcome().digest, reference);
}

TEST(RegistrySerialization, TruncatedImagesRejectCleanly) {
  const Query q = tiny_query();
  const std::string wire = prefix_wire_image(q);
  dissem::DissemScenario s(q.spec, q.seed);
  // Every strict prefix of a valid image is invalid — decode must answer
  // nullopt (never throw, crash, or half-decode) at any cut point.
  for (const double frac : {0.0, 0.1, 0.37, 0.5, 0.81, 0.99}) {
    const auto cut = static_cast<std::size_t>(frac * double(wire.size()));
    EXPECT_FALSE(
        s.sim.checkpoint().deserialize_snapshot(wire.substr(0, cut)).has_value())
        << "cut at " << cut << "/" << wire.size();
  }
  // Trailing garbage is equally fatal: the size fields must account for
  // every byte.
  EXPECT_FALSE(
      s.sim.checkpoint().deserialize_snapshot(wire + "junk").has_value());
}

// -------------------------------------------------------- Snapshot store ----

TEST(SnapshotStore, PutGetRoundTripsAndCountsFiles) {
  SnapshotStore store(scratch_dir("roundtrip"));
  const std::string payload = "hello wire world \n binary\0!";
  ASSERT_TRUE(store.put(0xabcdULL, payload));
  EXPECT_EQ(store.file_count(), 1u);
  std::string out;
  EXPECT_EQ(store.get(0xabcdULL, out), SnapshotStore::GetStatus::kHit);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(store.get(0x1234ULL, out), SnapshotStore::GetStatus::kMissing);
}

TEST(SnapshotStore, CorruptHeaderTruncationAndVersionSkewAreRejected) {
  const std::string dir = scratch_dir("corrupt");
  SnapshotStore store(dir);
  const std::string payload(300, 'x');
  ASSERT_TRUE(store.put(7, payload));
  const std::string path = dir + "/" + SnapshotStore::file_name(7);

  const auto rewrite = [&](const std::function<std::string(std::string)>& f) {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << f(std::move(all));
  };
  std::string sink;

  rewrite([](std::string s) { s[0] = 'X'; return s; });  // bad magic
  EXPECT_EQ(store.get(7, sink), SnapshotStore::GetStatus::kRejected);

  ASSERT_TRUE(store.put(7, payload));
  rewrite([](std::string s) { s[7] = '9'; return s; });  // unsupported version
  EXPECT_EQ(store.get(7, sink), SnapshotStore::GetStatus::kRejected);

  ASSERT_TRUE(store.put(7, payload));
  rewrite([](std::string s) { return s.substr(0, s.size() - 40); });  // truncated
  EXPECT_EQ(store.get(7, sink), SnapshotStore::GetStatus::kRejected);

  ASSERT_TRUE(store.put(7, payload));
  rewrite([](std::string s) { s[s.size() - 10] ^= 1; return s; });  // bit rot
  EXPECT_EQ(store.get(7, sink), SnapshotStore::GetStatus::kRejected);

  // Wrong prefix stamp: a valid file served under another prefix's name.
  ASSERT_TRUE(store.put(7, payload));
  std::filesystem::copy_file(path, dir + "/" + SnapshotStore::file_name(8));
  EXPECT_EQ(store.get(8, sink), SnapshotStore::GetStatus::kRejected);

  // The intact original still reads back: rejection is per-file.
  EXPECT_EQ(store.get(7, sink), SnapshotStore::GetStatus::kHit);
  EXPECT_EQ(sink, payload);
}

// ------------------------------------------------- Service durable tier ----

TEST(CampaignServiceDurability, RestartedServiceReWarmsDigestIdentical) {
  const std::string dir = scratch_dir("rewarm");
  const std::vector<Query> batch = {
      tiny_query(42, dissem::AttackCampaign::kNone, 0.0),
      tiny_query(42, dissem::AttackCampaign::kJamming, 0.6),
      tiny_query(43, dissem::AttackCampaign::kGatewayHunt, 0.8),
      tiny_query(43, dissem::AttackCampaign::kCombined, 0.5),
  };
  std::vector<std::uint64_t> reference;
  for (const Query& q : batch) {
    reference.push_back(CampaignService::run_uncached(q).digest);
  }

  {
    CampaignService::Options opts;
    opts.workers = 2;
    opts.snapshot_dir = dir;
    CampaignService first(opts);
    const serve::BatchResult res = first.submit(batch);
    EXPECT_EQ(res.failures, 0u);
    EXPECT_EQ(res.prefix_sims, 2u);
    EXPECT_EQ(first.cache_stats().disk_stores, 2u);
  }  // the first service dies; its memory tier dies with it

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    CampaignService::Options opts;
    opts.workers = workers;
    opts.snapshot_dir = dir;
    CampaignService revived(opts);
    const serve::BatchResult res = revived.submit(batch);
    EXPECT_EQ(res.failures, 0u);
    // No prefix re-simulation: both prefixes re-warm from the disk tier.
    EXPECT_EQ(res.prefix_sims, 0u) << "workers=" << workers;
    EXPECT_EQ(res.disk_hits, 2u) << "workers=" << workers;
    EXPECT_EQ(res.cache_hits, batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(res.results[i].outcome.digest, reference[i])
          << "workers=" << workers << " query=" << i;
    }
  }
}

TEST(CampaignServiceDurability, CorruptDiskFilesFallBackToColdSimulation) {
  const std::string dir = scratch_dir("fallback");
  const Query q = tiny_query(50, dissem::AttackCampaign::kJamming, 0.4);
  const std::uint64_t reference = CampaignService::run_uncached(q).digest;

  CampaignService::Options opts;
  opts.workers = 1;
  opts.snapshot_dir = dir;
  {
    CampaignService first(opts);
    ASSERT_EQ(first.submit({q}).failures, 0u);
  }
  // Vandalize the stored snapshot: flip one payload byte.
  const std::string path =
      dir + "/" + SnapshotStore::file_name(serve::prefix_hash(q));
  {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    all[all.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << all;
  }
  CampaignService revived(opts);
  const serve::BatchResult res = revived.submit({q});
  // The corrupt file is rejected, the prefix re-simulates cold, and the
  // answer is still exactly right — then the re-simulated snapshot
  // OVERWRITES the corrupt file, healing the tier.
  EXPECT_EQ(res.failures, 0u);
  EXPECT_EQ(res.disk_hits, 0u);
  EXPECT_EQ(res.prefix_sims, 1u);
  EXPECT_EQ(revived.cache_stats().disk_rejects, 1u);
  EXPECT_EQ(res.results[0].outcome.digest, reference);

  CampaignService again(opts);
  const serve::BatchResult healed = again.submit({q});
  EXPECT_EQ(healed.disk_hits, 1u);
  EXPECT_EQ(healed.results[0].outcome.digest, reference);
}

// ------------------------------------------------------ Journal durability ----

TEST(CampaignJournal, AppendToUnopenablePathThrows) {
  // The parent directory does not exist, so the append-open must fail —
  // and the entry must NOT appear in memory (no phantom durability).
  sim::CampaignJournal journal("persist_test_scratch/no_such_dir/j.log");
  EXPECT_THROW(journal.append(sim::JournalEntry{1, 0, 2.5, "p", "m"}),
               std::runtime_error);
  EXPECT_TRUE(journal.entries().empty());
}

TEST(CampaignJournal, RunResumableSurfacesJournalWriteFailures) {
  sim::CampaignJournal journal("persist_test_scratch/no_such_dir/j.log");
  sim::ParallelRunner::Options po;
  po.workers = 2;
  const sim::ParallelRunner runner(po);
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const auto out = runner.run_resumable<std::uint64_t>(
      seeds, [](sim::ReplicationContext& ctx) { return ctx.seed * 10; },
      journal, [](const std::uint64_t& v) { return std::to_string(v); },
      [](std::string_view s) -> std::uint64_t {
        return std::strtoull(std::string(s).c_str(), nullptr, 10);
      });
  // Every replication still succeeded — the answers are correct — but none
  // are durable, and the outcome says so instead of pretending.
  EXPECT_EQ(out.failures, 0u);
  EXPECT_EQ(out.journal_write_failures, seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(out.replications[i].payload, seeds[i] * 10);
  }
  EXPECT_TRUE(journal.entries().empty());
}

}  // namespace
}  // namespace iobt
