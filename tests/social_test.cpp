// Tests for social sensing: EM truth discovery, baselines, streaming
// window, and the in-network reporting service.

#include <gtest/gtest.h>

#include "net/dispatcher.h"
#include "social/claims.h"
#include "social/service.h"
#include "social/truth_discovery.h"
#include "things/population.h"

namespace iobt::social {
namespace {

using sim::Rng;

// -------------------------------------------------------- EM algorithm ----

TEST(EmTruthDiscovery, EmptyInputsConvergeTrivially) {
  const auto r = em_truth_discovery({}, 0, 0);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.truth_probability.empty());
}

TEST(EmTruthDiscovery, UnanimousReliableSources) {
  // Three sources all assert var 0 true and var 1 false.
  std::vector<Claim> claims = {{0, 0, true},  {1, 0, true},  {2, 0, true},
                               {0, 1, false}, {1, 1, false}, {2, 1, false}};
  const auto r = em_truth_discovery(claims, 3, 2);
  EXPECT_GT(r.truth_probability[0], 0.9);
  EXPECT_LT(r.truth_probability[1], 0.1);
  EXPECT_TRUE(r.converged);
}

TEST(EmTruthDiscovery, RecoversTruthFromNoisySources) {
  Rng rng(1);
  ClaimGenConfig cfg;
  cfg.num_sources = 40;
  cfg.num_variables = 200;
  cfg.report_density = 0.4;
  const auto g = generate_claims(cfg, rng);
  const auto r = em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
  EXPECT_GT(decision_accuracy(r.truth_probability, g.ground_truth), 0.95);
}

TEST(EmTruthDiscovery, EstimatesSourceReliabilityOrdering) {
  Rng rng(2);
  ClaimGenConfig cfg;
  cfg.num_sources = 30;
  cfg.num_variables = 300;
  cfg.report_density = 0.5;
  cfg.honest_reliability_min = 0.55;
  cfg.honest_reliability_max = 0.95;
  const auto g = generate_claims(cfg, rng);
  const auto r = em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
  // Correlation between true and estimated reliability should be strongly
  // positive (allow sign-flip-free check via rank agreement on extremes).
  double best_true = -1, worst_true = 2;
  std::size_t best_i = 0, worst_i = 0;
  for (std::size_t i = 0; i < cfg.num_sources; ++i) {
    if (g.true_reliability[i] > best_true) {
      best_true = g.true_reliability[i];
      best_i = i;
    }
    if (g.true_reliability[i] < worst_true) {
      worst_true = g.true_reliability[i];
      worst_i = i;
    }
  }
  EXPECT_GT(r.source_reliability[best_i], r.source_reliability[worst_i]);
}

TEST(EmTruthDiscovery, BeatsVotingUnderCoordinatedLiars) {
  Rng rng(3);
  ClaimGenConfig cfg;
  cfg.num_sources = 50;
  cfg.num_variables = 300;
  cfg.report_density = 0.4;
  cfg.adversary_fraction = 0.4;       // 40% consistently inverted sources
  cfg.adversary_lie_probability = 0.95;
  const auto g = generate_claims(cfg, rng);

  const auto em = em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
  const auto vote = majority_vote(g.claims, cfg.num_variables);
  const double em_acc = decision_accuracy(em.truth_probability, g.ground_truth);
  const double vote_acc = decision_accuracy(vote, g.ground_truth);
  EXPECT_GT(em_acc, vote_acc);
  EXPECT_GT(em_acc, 0.85);
}

TEST(EmTruthDiscovery, OracleBayesUpperBoundsVoting) {
  Rng rng(4);
  ClaimGenConfig cfg;
  cfg.num_sources = 30;
  cfg.num_variables = 200;
  cfg.adversary_fraction = 0.3;
  const auto g = generate_claims(cfg, rng);
  const auto oracle =
      weighted_bayes(g.claims, g.true_reliability, cfg.num_variables, cfg.prior_true);
  const auto vote = majority_vote(g.claims, cfg.num_variables);
  EXPECT_GE(decision_accuracy(oracle, g.ground_truth) + 1e-9,
            decision_accuracy(vote, g.ground_truth));
}

TEST(EmTruthDiscovery, DeterministicForFixedInput) {
  Rng rng(5);
  const auto g = generate_claims({}, rng);
  const auto r1 = em_truth_discovery(g.claims, 50, 100);
  const auto r2 = em_truth_discovery(g.claims, 50, 100);
  EXPECT_EQ(r1.truth_probability, r2.truth_probability);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

TEST(MajorityVote, CountsFractions) {
  std::vector<Claim> claims = {{0, 0, true}, {1, 0, true}, {2, 0, false}};
  const auto v = majority_vote(claims, 2);
  EXPECT_NEAR(v[0], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(v[1], 0.5);  // no claims: prior
}

TEST(WeightedBayes, ReliableSourceDominates) {
  // Source 0 (r=0.95) says true; sources 1,2 (r=0.55) say false.
  std::vector<Claim> claims = {{0, 0, true}, {1, 0, false}, {2, 0, false}};
  const auto v = weighted_bayes(claims, {0.95, 0.55, 0.55}, 1);
  EXPECT_GT(v[0], 0.5);
}

// ------------------------------------------------------------ Streaming ----

TEST(StreamingClaims, WindowEvictsOldest) {
  StreamingClaims s(3);
  for (std::uint32_t i = 0; i < 5; ++i) s.add({i, 0, true});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.window()[0].source, 2u);  // 0 and 1 evicted
}

TEST(StreamingClaims, RunEmOnWindow) {
  StreamingClaims s(100);
  for (std::uint32_t i = 0; i < 5; ++i) s.add({i, 0, true});
  const auto r = s.run_em(5, 1);
  EXPECT_GT(r.truth_probability[0], 0.9);
}

// ----------------------------------------------------------- Generation ----

TEST(ClaimGeneration, RespectsDensityAndCounts) {
  Rng rng(6);
  ClaimGenConfig cfg;
  cfg.num_sources = 20;
  cfg.num_variables = 100;
  cfg.report_density = 0.25;
  const auto g = generate_claims(cfg, rng);
  EXPECT_EQ(g.ground_truth.size(), 100u);
  EXPECT_EQ(g.true_reliability.size(), 20u);
  const double expected = 20 * 100 * 0.25;
  EXPECT_NEAR(static_cast<double>(g.claims.size()), expected, expected * 0.3);
}

TEST(ClaimGeneration, AdversaryFractionRoughlyHonored) {
  Rng rng(7);
  ClaimGenConfig cfg;
  cfg.num_sources = 500;
  cfg.adversary_fraction = 0.3;
  const auto g = generate_claims(cfg, rng);
  int adv = 0;
  for (bool b : g.is_adversary) adv += b ? 1 : 0;
  EXPECT_NEAR(adv / 500.0, 0.3, 0.07);
}

// -------------------------------------------------------------- Service ----

struct SocialFixture : ::testing::Test {
  sim::Simulator sim;
  net::Network net{sim, net::ChannelModel(2.0, 0.0), Rng(5)};
  things::World world{sim, net, {{0, 0}, {1000, 1000}}, Rng(6)};
  net::Dispatcher disp{net};

  things::AssetId add_human(sim::Vec2 pos, double reliability) {
    Rng r(world.asset_count() + 10);
    auto a = things::make_asset_template(things::DeviceClass::kHuman,
                                         things::Affiliation::kGray, r);
    a.report_reliability = reliability;
    return world.add_asset(std::move(a), pos,
                           things::radio_for_class(things::DeviceClass::kHuman));
  }
  things::AssetId add_collector(sim::Vec2 pos) {
    Rng r(world.asset_count() + 10);
    auto a = things::make_asset_template(things::DeviceClass::kEdgeServer,
                                         things::Affiliation::kBlue, r);
    return world.add_asset(std::move(a), pos,
                           things::radio_for_class(things::DeviceClass::kEdgeServer));
  }
};

TEST_F(SocialFixture, CellIndexingCoversGrid) {
  const auto collector = add_collector({500, 500});
  SocialSensingConfig cfg;
  cfg.grid_cells = 4;
  SocialSensingService svc(world, disp, collector, {}, cfg);
  EXPECT_EQ(svc.cell_count(), 16u);
  EXPECT_EQ(svc.cell_of({0, 0}), 0u);
  EXPECT_EQ(svc.cell_of({999, 999}), 15u);
  EXPECT_EQ(svc.cell_of({999, 0}), 3u);
  EXPECT_EQ(svc.cell_of({0, 999}), 12u);
}

TEST_F(SocialFixture, ReportsFlowAndFuseFindsOccupiedCells) {
  // Within single-hop range of the human radios (200 m).
  const auto collector = add_collector({300, 300});
  std::vector<things::AssetId> humans;
  // A crowd of decent observers near a real target.
  for (int i = 0; i < 12; ++i) {
    humans.push_back(add_human({200.0 + 10 * i, 200.0}, 0.85));
  }
  world.add_target({210, 205}, nullptr, "hostile");

  SocialSensingConfig cfg;
  cfg.grid_cells = 5;
  cfg.report_period = sim::Duration::seconds(10);
  cfg.observation_radius_m = 150.0;
  SocialSensingService svc(world, disp, collector, humans, cfg);
  svc.start();
  sim.run_until(sim::SimTime::seconds(200));

  EXPECT_GT(svc.claims_received(), 100u);
  security::TrustRegistry trust;
  const auto result = svc.fuse(&trust);
  const auto truth = svc.ground_truth_occupancy();
  EXPECT_GT(decision_accuracy(result.truth_probability, truth), 0.9);
  // Trust scores were refreshed for reporters.
  EXPECT_GT(trust.subject_count(), 0u);
}

TEST_F(SocialFixture, UnregisteredSourcesIgnored) {
  const auto collector = add_collector({500, 500});
  const auto outsider = add_human({400, 400}, 0.9);
  SocialSensingService svc(world, disp, collector, {}, {});
  // Outsider sends a forged report directly.
  net::Message m;
  m.kind = "social.report";
  m.size_bytes = 40;
  m.payload = CellReport{outsider, 0, true};
  net.send(world.asset(outsider).node, world.asset(collector).node, std::move(m));
  sim.run();
  EXPECT_EQ(svc.claims_received(), 0u);
}

// Property sweep: EM accuracy degrades gracefully with adversary fraction
// but stays above voting.
class AdversarySweep : public ::testing::TestWithParam<double> {};

TEST_P(AdversarySweep, EmNotWorseThanVoting) {
  Rng rng(42 + static_cast<std::uint64_t>(GetParam() * 100));
  ClaimGenConfig cfg;
  cfg.num_sources = 40;
  cfg.num_variables = 200;
  cfg.report_density = 0.4;
  cfg.adversary_fraction = GetParam();
  const auto g = generate_claims(cfg, rng);
  const auto em = em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
  const auto vote = majority_vote(g.claims, cfg.num_variables);
  EXPECT_GE(decision_accuracy(em.truth_probability, g.ground_truth) + 0.02,
            decision_accuracy(vote, g.ground_truth));
}

INSTANTIATE_TEST_SUITE_P(Fractions, AdversarySweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4));

}  // namespace
}  // namespace iobt::social
