// E9 — The autonomy/predictability trade-off (§VI).
//
// Paper claim: "More autonomy implies less predictability of aggregate
// behavior which may reduce what can be guaranteed ... to attain high
// responsiveness and agility, or to scale to larger system sizes, more
// decisions need to be local ... Can systems therefore adapt the balance
// depending on requirements?"
//
// Operationalization: a task-allocation problem where a fraction f of the
// force decides locally (parallel best response; latency = rounds) and
// the remainder is assigned by the commander (centralized greedy;
// sequential approvals, so latency grows with the block size).
//
//   latency        — command cycles until every decision is final
//   welfare        — achieved mission welfare
//   unpredictability — spread (sd) of the final welfare across random
//                    initial conditions of the autonomous block: the
//                    centralized block is deterministic, so the spread is
//                    exactly the behaviour the commander cannot predict.

#include <cmath>

#include "bench_util.h"
#include "intent/games.h"

namespace {

using namespace iobt;

struct Result {
  double latency = 0;
  double welfare = 0;
  double unpredictability = 0;
};

/// Runs the hybrid allocation once for a given autonomous-block start.
/// Returns (welfare, latency_cycles).
std::pair<double, std::size_t> hybrid_once(const intent::TaskAllocationGame& g,
                                           std::size_t n_local,
                                           const intent::JointAction& central_part,
                                           std::size_t central_latency,
                                           intent::JointAction local_start) {
  intent::JointAction joint = central_part;
  for (std::size_t i = 0; i < n_local; ++i) joint[i] = local_start[i];

  std::size_t local_rounds = 0;
  for (std::size_t round = 0; round < 100; ++round) {
    bool moved = false;
    for (std::size_t i = 0; i < n_local; ++i) {
      const auto br = g.best_response(i, joint);
      if (br != joint[i]) {
        joint[i] = br;
        moved = true;
      }
    }
    ++local_rounds;
    if (!moved) break;
  }
  return {g.welfare(joint), central_latency + local_rounds};
}

Result run(double autonomy_fraction, std::size_t agents, std::size_t tasks,
           int scenarios) {
  Result r;
  double latency_acc = 0, welfare_acc = 0, unpred_acc = 0;
  for (int t = 0; t < scenarios; ++t) {
    sim::Rng rng(1000 * static_cast<std::uint64_t>(t) + agents +
                 static_cast<std::uint64_t>(autonomy_fraction * 100));
    const auto g = intent::TaskAllocationGame::random_instance(agents, tasks, rng);
    const auto n_local = static_cast<std::size_t>(autonomy_fraction *
                                                  static_cast<double>(agents));

    // Commander assigns the centralized block (agents n_local..end) by
    // incremental greedy; one approval per assignment.
    intent::JointAction central(agents, g.idle_action());
    std::size_t central_latency = 0;
    {
      std::vector<double> fail(g.num_tasks(), 1.0);
      std::vector<bool> assigned(agents, false);
      while (true) {
        double best_gain = 1e-12;
        std::size_t bi = agents, bj = 0;
        for (std::size_t i = n_local; i < agents; ++i) {
          if (assigned[i]) continue;
          for (std::size_t j = 0; j < g.num_tasks(); ++j) {
            const double gain = g.value(j) * fail[j] * g.effectiveness(i, j);
            if (gain > best_gain) {
              best_gain = gain;
              bi = i;
              bj = j;
            }
          }
        }
        if (bi == agents) break;
        central[bi] = bj;
        assigned[bi] = true;
        fail[bj] *= (1.0 - g.effectiveness(bi, bj));
        ++central_latency;
      }
    }

    // The autonomous block best-responds from several random initial
    // conditions: the welfare spread across them is what the commander
    // cannot predict in advance.
    const int starts = 6;
    std::vector<double> welfares;
    double lat = 0;
    sim::Rng srng(42 + static_cast<std::uint64_t>(t));
    for (int s = 0; s < starts; ++s) {
      intent::JointAction local_start(agents, g.idle_action());
      for (std::size_t i = 0; i < n_local; ++i) {
        local_start[i] = static_cast<std::size_t>(
            srng.uniform_int(0, static_cast<std::int64_t>(g.num_tasks())));
      }
      const auto [w, cycles] =
          hybrid_once(g, n_local, central, central_latency, local_start);
      welfares.push_back(w);
      lat += static_cast<double>(cycles);
    }
    double mean = 0;
    for (double w : welfares) mean += w;
    mean /= welfares.size();
    double var = 0;
    for (double w : welfares) var += (w - mean) * (w - mean);
    latency_acc += lat / starts;
    welfare_acc += mean;
    unpred_acc += std::sqrt(var / welfares.size());
  }
  r.latency = latency_acc / scenarios;
  r.welfare = welfare_acc / scenarios;
  r.unpredictability = unpred_acc / scenarios;
  return r;
}

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E9: autonomy vs predictability",
         "more local decisions -> faster response but less predictable aggregate "
         "behavior; the balance should adapt to requirements");

  for (std::size_t agents : {30u, 90u}) {
    const std::size_t tasks = agents / 3;
    std::printf("force size %zu (%zu tasks), 6 scenario draws x 6 starts:\n", agents,
                tasks);
    row("%-12s %-16s %-10s %-18s", "autonomy", "latency(cycles)", "welfare",
        "unpredictability");
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const Result r = run(f, agents, tasks, 6);
      row("%-12.2f %-16.1f %-10.2f %-18.3f", f, r.latency, r.welfare,
          r.unpredictability);
    }
    std::printf("\n");
  }
  return 0;
}
