// R1 — Replication-parallelism harness.
//
// The paper's scale claim (§III, E1: composites of "1,000s to 10,000s of
// nodes ... within minutes") is exercised through seed sweeps: many
// independent replications of a deterministic simulation. This bench
// measures how ParallelRunner scales that sweep across a worker pool on a
// synthesis-sized workload (per replication: generate a ~1,200-candidate
// recruitment pool, run greedy composition, evaluate assurance), and — the
// part perf numbers cannot show — verifies that the aggregated output is
// BIT-IDENTICAL for every worker count. Emits BENCH_runner.json so the
// speedup trajectory is tracked across PRs.

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "sim/runner.h"
#include "synthesis/composer.h"

namespace {

using namespace iobt;
using synthesis::Candidate;
using synthesis::Composer;
using synthesis::MissionSpec;
using synthesis::Solver;

constexpr std::size_t kPoolSize = 2500;
constexpr std::size_t kReplications = 16;

std::vector<Candidate> make_pool(std::size_t n, sim::Rng& rng) {
  std::vector<Candidate> pool;
  pool.reserve(n);
  const double side = 3000.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Candidate c;
    c.asset = i;
    c.position = {rng.uniform(0, side), rng.uniform(0, side)};
    const std::size_t kind = rng.categorical({0.5, 0.3, 0.2});
    switch (kind) {
      case 0:
        c.sensors = {{things::Modality::kCamera, rng.uniform(100, 250), 0.8, 0.02}};
        c.cost = 1.0;
        break;
      case 1:
        c.sensors = {{things::Modality::kAcoustic, rng.uniform(150, 300), 0.75, 0.02}};
        c.cost = 1.0;
        break;
      default:
        c.sensors = {{things::Modality::kCamera, rng.uniform(300, 500), 0.9, 0.02}};
        c.compute.flops = 2e10;
        c.cost = 3.0;
        break;
    }
    c.trust = rng.uniform(0.55, 1.0);
    pool.push_back(std::move(c));
  }
  return pool;
}

MissionSpec spec() {
  MissionSpec s;
  s.name = "bench_runner";
  s.sensing.push_back(
      {things::Modality::kCamera, {{0, 0}, {3000, 3000}}, 0.8, 0.5, 12});
  s.sensing.push_back(
      {things::Modality::kAcoustic, {{0, 0}, {3000, 3000}}, 0.55, 0.5, 8});
  return s;
}

/// One replication of the seed-sweep workload: pool generation + greedy
/// composition, metrics recorded the way a real experiment records them.
double replicate(sim::ReplicationContext& ctx) {
  sim::Rng rng(ctx.seed);
  auto pool = make_pool(kPoolSize, rng);
  Composer comp(spec(), pool, [](std::size_t) { return 1; });
  const auto composite = comp.compose(Solver::kGreedy);
  double cost = 0;
  for (std::size_t m : composite.member_indices) cost += pool[m].cost;
  ctx.metrics.count("compose.evaluations",
                    static_cast<double>(composite.evaluations));
  ctx.metrics.observe("compose.members",
                      static_cast<double>(composite.member_assets.size()));
  ctx.metrics.observe("compose.cost", cost);
  ctx.metrics.gauge("compose.feasible",
                    composite.assurance.meets_spec ? 1.0 : 0.0);
  return cost;
}

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

}  // namespace

int main() {
  using namespace iobt::bench;

  header("R1: parallel replication harness",
         "seed sweeps are embarrassingly parallel; aggregated output must be "
         "bit-identical for any worker count");

  const auto seeds = sim::ParallelRunner::seed_range(1000, kReplications);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("replications=%zu  pool=%zu candidates  hardware_concurrency=%u\n\n",
              kReplications, kPoolSize, hw);

  struct ConfigRow {
    std::size_t workers;
    double wall_ms;
    std::uint64_t digest;
    std::uint64_t payload_hash;
  };
  std::vector<ConfigRow> rows;

  row("%-10s %-12s %-12s %-18s", "workers", "wall_ms", "speedup", "merged_digest");
  double serial_ms = 0;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    const sim::ParallelRunner runner(
        {.workers = workers, .repro_program = "bench_runner"});
    const auto outcome = runner.run<double>(seeds, replicate);
    std::uint64_t payload_hash = 0xcbf29ce484222325ULL;
    for (const auto& r : outcome.replications) {
      payload_hash = (payload_hash ^ bits_of(r.payload)) * 0x100000001b3ULL;
    }
    if (workers == 0) serial_ms = outcome.wall_ms;
    rows.push_back(
        {workers, outcome.wall_ms, outcome.merged.digest(), payload_hash});
    row("%-10zu %-12.1f %-12.2f %016llx", workers, outcome.wall_ms,
        serial_ms / outcome.wall_ms,
        static_cast<unsigned long long>(outcome.merged.digest()));
  }

  bool identical = true;
  for (const auto& r : rows) {
    identical = identical && r.digest == rows[0].digest &&
                r.payload_hash == rows[0].payload_hash;
  }
  row("");
  row("aggregated output bit-identical across worker counts: %s",
      identical ? "yes" : "NO — DETERMINISM VIOLATION");

  std::FILE* f = std::fopen("BENCH_runner.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"bench_runner\",\n");
    std::fprintf(f,
                 "  \"replications\": %zu, \"pool_candidates\": %zu, "
                 "\"hardware_concurrency\": %u,\n",
                 kReplications, kPoolSize, hw);
    std::fprintf(f, "  \"deterministic_across_workers\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"workers\": %zu, \"wall_ms\": %.3f, \"speedup\": "
                   "%.3f, \"merged_digest\": \"%016llx\"}%s\n",
                   r.workers, r.wall_ms, serial_ms / r.wall_ms,
                   static_cast<unsigned long long>(r.digest),
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    row("");
    row("wrote BENCH_runner.json");
  }
  return identical ? 0 : 1;
}
