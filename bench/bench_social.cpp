// E3 — Social sensing truth discovery.
//
// Paper claim (§III-A, refs [1-4]): algorithms "automatically discover
// ground-truth from possibly noisy, biased, linguistically ambiguous, and
// conflicting claims" and "characterize reliability of sources".
//
// Series regenerated:
//   (a) decision accuracy vs adversary fraction for EM vs majority vote
//       vs known-reliability Bayesian oracle,
//   (b) source-reliability estimation error (mean |est - true|) vs
//       adversary fraction,
//   (c) accuracy vs report density (how sparse can the crowd be).
//
// Every cell is mean ± stddev over kReps independent replications, executed
// on the ParallelRunner worker pool; output is identical for any pool size.

#include <cmath>

#include "bench_util.h"
#include "sim/runner.h"
#include "social/claims.h"

namespace {

struct TrialOut {
  double em = 0;
  double vote = 0;
  double oracle = 0;
  double rel_err = 0;
};

constexpr std::size_t kReps = 8;

}  // namespace

int main() {
  using namespace iobt;
  using namespace iobt::bench;

  header("E3: truth discovery",
         "discover ground truth from noisy conflicting claims; characterize sources");

  const sim::ParallelRunner runner(
      {.workers = bench_workers(), .repro_program = "bench_social"});

  row("%-12s %-16s %-16s %-16s %-16s", "adv_frac", "EM", "vote", "oracle",
      "rel_err(EM)");
  for (double adv : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<std::uint64_t> seeds(kReps);
    for (std::size_t t = 0; t < kReps; ++t) {
      seeds[t] = 1000 * t + static_cast<std::uint64_t>(adv * 100);
    }
    const auto outcome = runner.run<TrialOut>(seeds, [&](sim::ReplicationContext& ctx) {
      sim::Rng rng(ctx.seed);
      social::ClaimGenConfig cfg;
      cfg.num_sources = 50;
      cfg.num_variables = 300;
      cfg.report_density = 0.35;
      cfg.adversary_fraction = adv;
      cfg.adversary_lie_probability = 0.9;
      const auto g = social::generate_claims(cfg, rng);
      const auto em =
          social::em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
      const auto vote = social::majority_vote(g.claims, cfg.num_variables);
      const auto oracle = social::weighted_bayes(g.claims, g.true_reliability,
                                                 cfg.num_variables, cfg.prior_true);
      TrialOut out;
      out.em = social::decision_accuracy(em.truth_probability, g.ground_truth);
      out.vote = social::decision_accuracy(vote, g.ground_truth);
      out.oracle = social::decision_accuracy(oracle, g.ground_truth);
      double err = 0;
      for (std::size_t i = 0; i < cfg.num_sources; ++i) {
        err += std::abs(em.source_reliability[i] - g.true_reliability[i]);
      }
      out.rel_err = err / static_cast<double>(cfg.num_sources);
      ctx.metrics.observe("em.accuracy", out.em);
      return out;
    });
    row("%-12.1f %-16s %-16s %-16s %-16s", adv,
        pm(outcome.stats([](const TrialOut& o) { return o.em; })).c_str(),
        pm(outcome.stats([](const TrialOut& o) { return o.vote; })).c_str(),
        pm(outcome.stats([](const TrialOut& o) { return o.oracle; })).c_str(),
        pm(outcome.stats([](const TrialOut& o) { return o.rel_err; })).c_str());
  }

  std::printf("\naccuracy vs report density (adv_frac=0.3):\n");
  row("%-12s %-16s %-16s", "density", "EM", "vote");
  for (double density : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    std::vector<std::uint64_t> seeds(kReps);
    for (std::size_t t = 0; t < kReps; ++t) {
      seeds[t] = 5000 + 1000 * t + static_cast<std::uint64_t>(density * 100);
    }
    const auto outcome = runner.run<TrialOut>(seeds, [&](sim::ReplicationContext& ctx) {
      sim::Rng rng(ctx.seed);
      social::ClaimGenConfig cfg;
      cfg.num_sources = 50;
      cfg.num_variables = 300;
      cfg.report_density = density;
      cfg.adversary_fraction = 0.3;
      const auto g = social::generate_claims(cfg, rng);
      const auto em =
          social::em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
      const auto vote = social::majority_vote(g.claims, cfg.num_variables);
      TrialOut out;
      out.em = social::decision_accuracy(em.truth_probability, g.ground_truth);
      out.vote = social::decision_accuracy(vote, g.ground_truth);
      return out;
    });
    row("%-12.2f %-16s %-16s", density,
        pm(outcome.stats([](const TrialOut& o) { return o.em; })).c_str(),
        pm(outcome.stats([](const TrialOut& o) { return o.vote; })).c_str());
  }
  return 0;
}
