// E3 — Social sensing truth discovery.
//
// Paper claim (§III-A, refs [1-4]): algorithms "automatically discover
// ground-truth from possibly noisy, biased, linguistically ambiguous, and
// conflicting claims" and "characterize reliability of sources".
//
// Series regenerated:
//   (a) decision accuracy vs adversary fraction for EM vs majority vote
//       vs known-reliability Bayesian oracle,
//   (b) source-reliability estimation error (mean |est - true|) vs
//       adversary fraction,
//   (c) accuracy vs report density (how sparse can the crowd be).

#include <cmath>

#include "bench_util.h"
#include "social/claims.h"

int main() {
  using namespace iobt;
  using namespace iobt::bench;

  header("E3: truth discovery",
         "discover ground truth from noisy conflicting claims; characterize sources");

  row("%-12s %-8s %-8s %-8s %-14s", "adv_frac", "EM", "vote", "oracle", "rel_err(EM)");
  for (double adv : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    // Average over several draws to smooth generator variance.
    double em_acc = 0, vote_acc = 0, oracle_acc = 0, rel_err = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      sim::Rng rng(1000 * t + static_cast<std::uint64_t>(adv * 100));
      social::ClaimGenConfig cfg;
      cfg.num_sources = 50;
      cfg.num_variables = 300;
      cfg.report_density = 0.35;
      cfg.adversary_fraction = adv;
      cfg.adversary_lie_probability = 0.9;
      const auto g = social::generate_claims(cfg, rng);
      const auto em =
          social::em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
      const auto vote = social::majority_vote(g.claims, cfg.num_variables);
      const auto oracle = social::weighted_bayes(g.claims, g.true_reliability,
                                                 cfg.num_variables, cfg.prior_true);
      em_acc += social::decision_accuracy(em.truth_probability, g.ground_truth);
      vote_acc += social::decision_accuracy(vote, g.ground_truth);
      oracle_acc += social::decision_accuracy(oracle, g.ground_truth);
      double err = 0;
      for (std::size_t i = 0; i < cfg.num_sources; ++i) {
        err += std::abs(em.source_reliability[i] - g.true_reliability[i]);
      }
      rel_err += err / static_cast<double>(cfg.num_sources);
    }
    row("%-12.1f %-8.3f %-8.3f %-8.3f %-14.3f", adv, em_acc / trials,
        vote_acc / trials, oracle_acc / trials, rel_err / trials);
  }

  std::printf("\naccuracy vs report density (adv_frac=0.3):\n");
  row("%-12s %-8s %-8s", "density", "EM", "vote");
  for (double density : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    double em_acc = 0, vote_acc = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      sim::Rng rng(5000 + 1000 * t + static_cast<std::uint64_t>(density * 100));
      social::ClaimGenConfig cfg;
      cfg.num_sources = 50;
      cfg.num_variables = 300;
      cfg.report_density = density;
      cfg.adversary_fraction = 0.3;
      const auto g = social::generate_claims(cfg, rng);
      const auto em =
          social::em_truth_discovery(g.claims, cfg.num_sources, cfg.num_variables);
      const auto vote = social::majority_vote(g.claims, cfg.num_variables);
      em_acc += social::decision_accuracy(em.truth_probability, g.ground_truth);
      vote_acc += social::decision_accuracy(vote, g.ground_truth);
    }
    row("%-12.2f %-8.3f %-8.3f", density, em_acc / trials, vote_acc / trials);
  }
  return 0;
}
