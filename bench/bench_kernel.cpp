// Kernel microbenchmark: event throughput of the discrete-event scheduler
// under the workloads the IoBT substrate actually generates at 10k-node
// scale — schedule/cancel churn (RTO timers armed and cancelled on ACK),
// periodic service loops, and bulk FIFO delivery. §I's scale claim ("1,000s
// to 10,000s of things", synthesized and exercised "within minutes") is
// only honest if this hot path sustains millions of events per second.
//
// The seed kernel (string-tagged events in the heap, tombstone-set
// cancellation) is reproduced below as `LegacySimulator` so the speedup of
// the slab/interned-tag kernel is measured, not asserted. Emits
// BENCH_kernel.json so the perf trajectory is tracked across PRs.

#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "sim/simulator.h"

namespace iobt {
namespace {

using sim::Duration;
using sim::SimTime;

// ------------------------------------------------------------------------
// Faithful copy of the seed (pre-slab) kernel, kept here as the perf
// baseline: per-event std::string tag + std::function stored directly in
// the heap, cancellation via an unordered_set of tombstones.
class LegacySimulator {
 public:
  using EventId = std::uint64_t;

  SimTime now() const { return now_; }

  EventId schedule_at(SimTime when, std::function<void()> fn,
                      std::string_view tag = {}) {
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(fn), std::string(tag)});
    return id;
  }
  EventId schedule_in(Duration delay, std::function<void()> fn,
                      std::string_view tag = {}) {
    return schedule_at(now_ + delay, std::move(fn), tag);
  }
  void cancel(EventId id) { cancelled_.insert(id); }

  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) continue;
      now_ = ev.when;
      ++executed_;
      ev.fn();
      return true;
    }
    return false;
  }
  void run() {
    while (step()) {
    }
  }
  std::uint64_t executed_count() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
    std::string tag;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };
  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

// ------------------------------------------------------------------------
// Workloads, templated over the kernel so both implementations run the
// exact same instruction stream.

struct WorkloadResult {
  std::uint64_t ops = 0;       // schedules + cancels issued
  std::uint64_t executed = 0;  // events that actually ran
  double wall_ms = 0.0;
  double ops_per_sec() const { return ops / (wall_ms * 1e-3); }
};

/// RTO-timer churn at `nodes` scale: every node keeps one timer armed;
/// each round cancels it (the "ACK arrived" path) and re-arms a fresh one.
/// This is the workload the reliable channel hammers the kernel with.
template <class Sim, class Tag>
WorkloadResult churn_workload(Sim& sim, Tag tag, int nodes, int rounds) {
  sim::Rng rng(42);
  std::vector<std::uint64_t> armed(static_cast<std::size_t>(nodes));
  std::uint64_t fired = 0;
  WorkloadResult r;
  bench::WallTimer timer;
  for (int i = 0; i < nodes; ++i) {
    armed[static_cast<std::size_t>(i)] = sim.schedule_in(
        Duration::millis(1000 + rng.uniform_int(0, 1000)), [&fired] { ++fired; },
        tag);
    ++r.ops;
  }
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < nodes; ++i) {
      sim.cancel(armed[static_cast<std::size_t>(i)]);
      armed[static_cast<std::size_t>(i)] = sim.schedule_in(
          Duration::millis(1000 + rng.uniform_int(0, 1000)),
          [&fired] { ++fired; }, tag);
      r.ops += 2;
    }
  }
  sim.run();
  r.wall_ms = timer.ms();
  r.executed = fired;
  return r;
}

/// Bulk FIFO delivery: `total` events scheduled in loose time order, then
/// drained — the shape of network frame delivery.
template <class Sim, class Tag>
WorkloadResult delivery_workload(Sim& sim, Tag tag, int total) {
  sim::Rng rng(7);
  std::uint64_t fired = 0;
  WorkloadResult r;
  bench::WallTimer timer;
  for (int i = 0; i < total; ++i) {
    sim.schedule_in(Duration::micros(rng.uniform_int(0, 10'000'000)),
                    [&fired] { ++fired; }, tag);
    ++r.ops;
  }
  sim.run();
  r.wall_ms = timer.ms();
  r.executed = fired;
  return r;
}

/// Self-rescheduling ticks (periodic service loops): `nodes` chains, each
/// rescheduling itself `ticks` times from inside its handler.
template <class Sim, class Tag>
WorkloadResult periodic_workload(Sim& sim, Tag tag, int nodes, int ticks) {
  std::uint64_t fired = 0;
  WorkloadResult r;
  bench::WallTimer timer;
  struct Chain {
    std::function<void()> fn;
    int remaining = 0;
  };
  for (int i = 0; i < nodes; ++i) {
    auto chain = std::make_shared<Chain>();
    chain->remaining = ticks;
    chain->fn = [&sim, &fired, tag, chain]() {
      ++fired;
      if (--chain->remaining > 0) {
        sim.schedule_in(Duration::millis(100), [chain] { chain->fn(); }, tag);
      } else {
        chain->fn = nullptr;  // break the shared_ptr cycle
      }
    };
    sim.schedule_in(Duration::millis(100), [chain] { chain->fn(); }, tag);
    ++r.ops;
  }
  sim.run();
  r.wall_ms = timer.ms();
  r.executed = fired;
  return r;
}

void print_result(const char* kernel, const char* workload,
                  const WorkloadResult& r) {
  bench::row("  %-8s %-10s ops=%9llu executed=%9llu wall=%9.2fms  %8.2f Mops/s",
             kernel, workload, static_cast<unsigned long long>(r.ops),
             static_cast<unsigned long long>(r.executed), r.wall_ms,
             r.ops_per_sec() * 1e-6);
}

void json_workload(std::FILE* f, const char* kernel, const char* workload,
                   const WorkloadResult& r, bool last) {
  std::fprintf(f,
               "    {\"kernel\": \"%s\", \"workload\": \"%s\", \"ops\": %llu, "
               "\"executed\": %llu, \"wall_ms\": %.3f, \"ops_per_sec\": %.0f}%s\n",
               kernel, workload, static_cast<unsigned long long>(r.ops),
               static_cast<unsigned long long>(r.executed), r.wall_ms,
               r.ops_per_sec(), last ? "" : ",");
}

}  // namespace
}  // namespace iobt

int main() {
  using namespace iobt;
  constexpr int kNodes = 10'000;
  constexpr int kChurnRounds = 50;
  constexpr int kDeliveryEvents = 1'000'000;
  constexpr int kPeriodicTicks = 100;

  bench::header("bench_kernel",
                "composite IoBTs of 1,000s-10,000s of nodes must be exercised "
                "within minutes -> the event kernel is the hot path");

  // The six (kernel x workload) baseline cells run as independent
  // replications through the ParallelRunner — each cell builds its own
  // simulator from scratch. The pool is pinned to ONE worker so wall-time
  // measurements never share a core; the runner still provides the
  // seed-ordered result carrier and per-cell wall clocks.
  sim::Simulator profiled;  // reused for the profile demo below
  const sim::ParallelRunner cell_runner(
      {.workers = 1, .repro_program = "bench_kernel"});
  const auto cells = cell_runner.run<WorkloadResult>(
      sim::ParallelRunner::seed_range(0, 6),
      [&](sim::ReplicationContext& ctx) -> WorkloadResult {
        switch (ctx.index) {
          case 0: {
            LegacySimulator sim;
            return churn_workload(sim, std::string_view("rel.rto"), kNodes,
                                  kChurnRounds);
          }
          case 1: {
            LegacySimulator sim;
            return delivery_workload(sim, std::string_view("net.deliver"),
                                     kDeliveryEvents);
          }
          case 2: {
            LegacySimulator sim;
            return periodic_workload(sim, std::string_view("svc.tick"), kNodes,
                                     kPeriodicTicks);
          }
          case 3: {
            sim::Simulator sim;
            return churn_workload(sim, sim.intern("rel.rto"), kNodes,
                                  kChurnRounds);
          }
          case 4: {
            sim::Simulator sim;
            return delivery_workload(sim, sim.intern("net.deliver"),
                                     kDeliveryEvents);
          }
          default: {
            sim::Simulator sim;
            return periodic_workload(sim, sim.intern("svc.tick"), kNodes,
                                     kPeriodicTicks);
          }
        }
      });
  const WorkloadResult& legacy_churn = cells.replications[0].payload;
  const WorkloadResult& legacy_delivery = cells.replications[1].payload;
  const WorkloadResult& legacy_periodic = cells.replications[2].payload;
  const WorkloadResult& slab_churn = cells.replications[3].payload;
  const WorkloadResult& slab_delivery = cells.replications[4].payload;
  const WorkloadResult& slab_periodic = cells.replications[5].payload;
  print_result("legacy", "churn", legacy_churn);
  print_result("legacy", "delivery", legacy_delivery);
  print_result("legacy", "periodic", legacy_periodic);
  print_result("slab", "churn", slab_churn);
  print_result("slab", "delivery", slab_delivery);
  print_result("slab", "periodic", slab_periodic);

  const double churn_speedup =
      slab_churn.ops_per_sec() / legacy_churn.ops_per_sec();
  const double delivery_speedup =
      slab_delivery.ops_per_sec() / legacy_delivery.ops_per_sec();
  const double periodic_speedup =
      slab_periodic.ops_per_sec() / legacy_periodic.ops_per_sec();
  bench::row("");
  bench::row("  speedup vs seed kernel: churn %.2fx, delivery %.2fx, periodic %.2fx",
             churn_speedup, delivery_speedup, periodic_speedup);

  // Per-tag profile demo: a mixed workload on one simulator with wall-time
  // accumulation on, printed the way every bench can now print it.
  profiled.set_profiling(true);
  churn_workload(profiled, profiled.intern("rel.rto"), 1000, 10);
  delivery_workload(profiled, profiled.intern("net.deliver"), 50'000);
  periodic_workload(profiled, profiled.intern("svc.tick"), 1000, 20);
  bench::row("");
  bench::row("per-tag kernel profile (mixed workload):");
  std::printf("%s", profiled.profile_table().c_str());

  // JSON row for the perf trajectory.
  std::FILE* f = std::fopen("BENCH_kernel.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"bench_kernel\",\n");
    std::fprintf(f, "  \"nodes\": %d, \"churn_rounds\": %d, \"delivery_events\": %d,\n",
                 kNodes, kChurnRounds, kDeliveryEvents);
    std::fprintf(f, "  \"workloads\": [\n");
    json_workload(f, "legacy", "churn", legacy_churn, false);
    json_workload(f, "legacy", "delivery", legacy_delivery, false);
    json_workload(f, "legacy", "periodic", legacy_periodic, false);
    json_workload(f, "slab", "churn", slab_churn, false);
    json_workload(f, "slab", "delivery", slab_delivery, false);
    json_workload(f, "slab", "periodic", slab_periodic, true);
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup\": {\"churn\": %.3f, \"delivery\": %.3f, \"periodic\": %.3f},\n",
                 churn_speedup, delivery_speedup, periodic_speedup);
    std::fprintf(f, "  \"profile\": [\n");
    const auto rows = profiled.profile();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"tag\": \"%s\", \"scheduled\": %llu, \"executed\": "
                   "%llu, \"cancelled\": %llu, \"busy_ms\": %.3f}%s\n",
                   r.tag.c_str(), static_cast<unsigned long long>(r.scheduled),
                   static_cast<unsigned long long>(r.executed),
                   static_cast<unsigned long long>(r.cancelled), r.busy_ms,
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::row("");
    bench::row("wrote BENCH_kernel.json");
  }
  return 0;
}
