// D1 — Percolation-style dissemination over multi-layer IoBT networks.
//
// Drives the canonical dissem scenario matrix ({layer configs} x {mobility}
// x {attack campaign} x {attack intensity}) through two harness modes:
//
//   default    Reach-vs-attack-intensity curves. Every waypoint-mobility
//              cell of the matrix (2 layer configs x 5 campaigns x 4
//              intensities) runs 3 replications on a ParallelRunner, and
//              the WHOLE sweep repeats under worker pools {1, 2, 8}: all
//              per-replication outcome digests must be bit-identical
//              across pool sizes. Emits BENCH_dissemination.json; exits
//              nonzero on any divergence.
//
//   --fuzz=N   CI fuzz slice: a deterministic pseudo-random sample of N
//              distinct matrix cells (vary the subset with --salt=S), each
//              run twice serially at a 60 s horizon and digest-compared.
//              A crash, throw, or determinism break prints a one-line
//              serial repro (--cell=<index>) and exits nonzero. The CI
//              sanitizer matrix runs this mode under ASan+UBSan.
//
//   --cell=I   Reproduce one matrix cell serially and verbosely — the
//              repro target printed by a failing fuzz run.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "dissem/scenario.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "sim/scenario_matrix.h"

namespace {

using namespace iobt;

/// Base seed for the canonical matrix: fixed so a --cell repro names the
/// same scenario in every invocation, on every machine.
constexpr std::uint64_t kMatrixSeed = 20260807;
constexpr std::size_t kRepsPerCell = 3;
constexpr double kFuzzHorizonS = 60.0;

struct DissemArgs {
  std::size_t fuzz = 0;        // 0 = curve mode
  std::uint64_t salt = 1;      // fuzz slice selector
  long cell = -1;              // >= 0 = single-cell repro mode
};

DissemArgs parse_dissem_args(int argc, char** argv) {
  DissemArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--fuzz=", 0) == 0) {
      out.fuzz = static_cast<std::size_t>(std::strtoull(arg.data() + 7, nullptr, 10));
    } else if (arg.rfind("--salt=", 0) == 0) {
      out.salt = std::strtoull(arg.data() + 7, nullptr, 10);
    } else if (arg.rfind("--cell=", 0) == 0) {
      out.cell = std::strtol(arg.data() + 7, nullptr, 10);
    }
  }
  return out;
}

/// Runs one matrix cell end-to-end and returns its outcome.
dissem::DissemOutcome run_cell(const sim::ScenarioCell& cell, double horizon_s,
                               std::uint64_t seed) {
  dissem::DissemSpec spec = dissem::spec_for_cell(cell);
  spec.horizon_s = horizon_s;
  return dissem::run_dissemination(spec, seed);
}

// ----------------------------------------------------------- Fuzz mode ----

int run_fuzz(const DissemArgs& args) {
  using namespace iobt::bench;
  const sim::ScenarioMatrix matrix = dissem::dissem_matrix(kMatrixSeed);
  const auto slice = matrix.slice(args.fuzz, args.salt);
  std::printf("fuzz: %zu/%zu cells (salt=%llu, horizon=%.0fs)\n", slice.size(),
              matrix.cell_count(), static_cast<unsigned long long>(args.salt),
              kFuzzHorizonS);
  std::size_t failures = 0;
  for (const sim::ScenarioCell& cell : slice) {
    std::string verdict = "ok";
    try {
      const dissem::DissemOutcome a = run_cell(cell, kFuzzHorizonS, cell.seed);
      const dissem::DissemOutcome b = run_cell(cell, kFuzzHorizonS, cell.seed);
      if (a.digest != b.digest) verdict = "NONDETERMINISTIC";
      else if (a.informed == 0) verdict = "EPIDEMIC NEVER STARTED";
    } catch (const std::exception& e) {
      verdict = std::string("THREW: ") + e.what();
    } catch (...) {
      verdict = "THREW: non-std exception";
    }
    const bool ok = verdict == "ok";
    failures += ok ? 0 : 1;
    std::printf("  cell %3zu  %-60s %s\n", cell.index, cell.name.c_str(),
                verdict.c_str());
    if (!ok) {
      std::printf("    repro: bench_dissemination --cell=%zu\n", cell.index);
    }
  }
  std::printf("fuzz verdict: %zu/%zu clean\n", slice.size() - failures,
              slice.size());
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------- Single-cell repro ----

int run_one_cell(long index) {
  const sim::ScenarioMatrix matrix = dissem::dissem_matrix(kMatrixSeed);
  if (index < 0 || static_cast<std::size_t>(index) >= matrix.cell_count()) {
    std::printf("cell index out of range (matrix has %zu cells)\n",
                matrix.cell_count());
    return 1;
  }
  const sim::ScenarioCell cell = matrix.cell(static_cast<std::size_t>(index));
  std::printf("cell %zu: %s (seed %llu)\n", cell.index, cell.name.c_str(),
              static_cast<unsigned long long>(cell.seed));
  const dissem::DissemOutcome o = run_cell(cell, kFuzzHorizonS, cell.seed);
  std::printf(
      "nodes=%zu informed=%zu live=%zu reach=%.3f reach_live=%.3f "
      "t50=%.2fs t90=%.2fs promotions=%zu digest=0x%016llx\n",
      o.nodes, o.informed, o.live, o.reach, o.reach_live, o.t50_s, o.t90_s,
      o.promotions, static_cast<unsigned long long>(o.digest));
  return 0;
}

// ----------------------------------------------------------- Curve mode ----

/// One (layer config, campaign, intensity) point, aggregated over its
/// replications.
struct CurvePoint {
  std::size_t cell_index = 0;
  double intensity = 0.0;
  double reach = 0.0;
  double reach_live = 0.0;
  double t50_s = 0.0;
  double t90_s = 0.0;
  std::size_t promotions = 0;
  std::uint64_t digest = 0;  ///< fnv-mix of the replication digests
};

struct Curve {
  std::string config;
  std::string attack;
  std::vector<CurvePoint> points;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace iobt::bench;
  const DissemArgs args = parse_dissem_args(argc, argv);
  if (args.cell >= 0) return run_one_cell(args.cell);
  if (args.fuzz > 0) return run_fuzz(args);

  header("D1: dissemination reach under layered attack campaigns",
         "alert percolation across a multi-layer IoBT degrades gracefully "
         "with attack intensity when gateways reconfigure");

  // The curve sweep: every waypoint-mobility cell of the canonical matrix.
  const sim::ScenarioMatrix matrix = dissem::dissem_matrix(kMatrixSeed);
  std::vector<sim::ScenarioCell> cells;
  for (const sim::ScenarioCell& c : matrix.all_cells()) {
    if (matrix.axes()[1].variants[c.choice[1]] == "waypoint") cells.push_back(c);
  }

  // Flatten to jobs (cell x replication); the seed list IS the job list,
  // so ParallelRunner's seed-ordered aggregation keeps job order stable
  // for every pool size.
  std::vector<std::uint64_t> job_seeds;
  for (const sim::ScenarioCell& c : cells) {
    for (std::size_t r = 0; r < kRepsPerCell; ++r) job_seeds.push_back(c.seed + r);
  }
  const auto body = [&cells](sim::ReplicationContext& ctx) {
    const sim::ScenarioCell& cell = cells[ctx.index / kRepsPerCell];
    dissem::DissemSpec spec = dissem::spec_for_cell(cell);
    return dissem::run_dissemination(spec, ctx.seed);
  };

  // Worker-count identity: the full sweep under pools {1, 2, 8} must
  // produce bit-identical per-job outcome digests.
  bool all_identical = true;
  std::vector<std::uint64_t> reference_digests;
  std::vector<dissem::DissemOutcome> outcomes;
  double sweep_ms = 0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const sim::ParallelRunner runner(workers);
    WallTimer t;
    const auto outcome = runner.run<dissem::DissemOutcome>(job_seeds, body);
    const double ms = t.ms();
    if (outcome.failures != 0) {
      std::printf("FATAL: %zu replications failed\n", outcome.failures);
      return 1;
    }
    std::vector<std::uint64_t> digests;
    for (const auto& r : outcome.replications) digests.push_back(r.payload.digest);
    if (workers == 1) {
      reference_digests = digests;
      for (const auto& r : outcome.replications) outcomes.push_back(r.payload);
      sweep_ms = ms;
    } else if (digests != reference_digests) {
      all_identical = false;
    }
    row("sweep: %zu jobs, workers=%zu, %.1f ms%s", job_seeds.size(), workers,
        ms,
        workers == 1 ? ""
                     : (digests == reference_digests ? ", digests identical"
                                                     : ", DIGESTS DIVERGED"));
  }

  // Aggregate jobs back into (config, attack) curves over intensity.
  std::vector<Curve> curves;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const sim::ScenarioCell& cell = cells[ci];
    const std::string config = matrix.axes()[0].variants[cell.choice[0]];
    const std::string attack = matrix.axes()[2].variants[cell.choice[2]];
    Curve* curve = nullptr;
    for (Curve& c : curves) {
      if (c.config == config && c.attack == attack) curve = &c;
    }
    if (curve == nullptr) {
      curves.push_back({config, attack, {}});
      curve = &curves.back();
    }
    CurvePoint p;
    p.cell_index = cell.index;
    p.intensity = dissem::spec_for_cell(cell).intensity;
    p.digest = 0xcbf29ce484222325ULL;
    // Time-to-fraction is -1 when the threshold was never reached; those
    // replications are excluded from the mean (a point where NO
    // replication reached the threshold reports -1).
    std::size_t reached50 = 0, reached90 = 0;
    for (std::size_t r = 0; r < kRepsPerCell; ++r) {
      const dissem::DissemOutcome& o = outcomes[ci * kRepsPerCell + r];
      p.reach += o.reach / kRepsPerCell;
      p.reach_live += o.reach_live / kRepsPerCell;
      if (o.t50_s >= 0) { p.t50_s += o.t50_s; ++reached50; }
      if (o.t90_s >= 0) { p.t90_s += o.t90_s; ++reached90; }
      p.promotions += o.promotions;
      p.digest ^= o.digest;
      p.digest *= 0x100000001b3ULL;
    }
    p.t50_s = reached50 > 0 ? p.t50_s / static_cast<double>(reached50) : -1.0;
    p.t90_s = reached90 > 0 ? p.t90_s / static_cast<double>(reached90) : -1.0;
    curve->points.push_back(p);
  }

  row("");
  row("%-24s %-14s %-10s %-8s %-11s %-8s %-8s %-10s", "config", "attack",
      "intensity", "reach", "reach_live", "t50_s", "t90_s", "promotions");
  for (const Curve& c : curves) {
    for (const CurvePoint& p : c.points) {
      row("%-24s %-14s %-10.1f %-8.3f %-11.3f %-8.2f %-8.2f %-10zu",
          c.config.c_str(), c.attack.c_str(), p.intensity, p.reach,
          p.reach_live, p.t50_s, p.t90_s, p.promotions);
    }
  }
  row("");
  row("all digests identical across workers {1,2,8}: %s",
      all_identical ? "yes" : "NO — DETERMINISM VIOLATION");

  // ---- JSON -----------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_dissemination.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"bench_dissemination\",\n");
    std::fprintf(f, "  \"digest_identity\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"workers\": [1, 2, 8],\n");
    std::fprintf(f, "  \"matrix_cells\": %zu,\n", matrix.cell_count());
    std::fprintf(f, "  \"jobs\": %zu,\n", job_seeds.size());
    std::fprintf(f, "  \"reps_per_cell\": %zu,\n", kRepsPerCell);
    std::fprintf(f, "  \"sweep_ms\": %.1f,\n", sweep_ms);
    std::fprintf(f, "  \"curves\": [\n");
    for (std::size_t i = 0; i < curves.size(); ++i) {
      const Curve& c = curves[i];
      std::fprintf(f, "    {\"config\": \"%s\", \"attack\": \"%s\", \"points\": [\n",
                   c.config.c_str(), c.attack.c_str());
      for (std::size_t j = 0; j < c.points.size(); ++j) {
        const CurvePoint& p = c.points[j];
        std::fprintf(f,
                     "      {\"cell\": %zu, \"intensity\": %.1f, \"reach\": "
                     "%.4f, \"reach_live\": %.4f, \"t50_s\": %.2f, \"t90_s\": "
                     "%.2f, \"promotions\": %zu, \"digest\": \"0x%016llx\"}%s\n",
                     p.cell_index, p.intensity, p.reach, p.reach_live, p.t50_s,
                     p.t90_s, p.promotions,
                     static_cast<unsigned long long>(p.digest),
                     j + 1 == c.points.size() ? "" : ",");
      }
      std::fprintf(f, "    ]}%s\n", i + 1 == curves.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    row("");
    row("wrote BENCH_dissemination.json");
  }
  return all_identical ? 0 : 1;
}
