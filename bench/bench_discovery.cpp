// E2 — Continuous discovery under churn and adversaries.
//
// Paper claim (§III-A): "they may move frequently, so their discovery
// needs to be continuous"; "the resilience of discovery and
// characterization to adversarial behavior" is a critical challenge.
//
// Series regenerated:
//   (a) directory recall and staleness vs churn rate (asset deaths/min),
//   (b) red-node identification precision/recall vs red fraction, with
//       the side-channel scanner as the only channel that sees hiders.

#include "bench_util.h"
#include "discovery/service.h"
#include "net/dispatcher.h"
#include "things/population.h"

namespace {

using namespace iobt;

struct Scenario {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<things::World> world;
  std::unique_ptr<net::Dispatcher> disp;
  std::unique_ptr<discovery::DiscoveryService> svc;

  Scenario(double red_fraction, std::uint64_t seed) {
    net = std::make_unique<net::Network>(sim, net::ChannelModel(2.0, 0.15),
                                         sim::Rng(seed));
    world = std::make_unique<things::World>(sim, *net, sim::Rect{{0, 0}, {1200, 1200}},
                                            sim::Rng(seed + 1));
    disp = std::make_unique<net::Dispatcher>(*net);

    things::PopulationConfig pop;
    pop.sensor_motes = 40;
    pop.smartphones = 25;
    pop.drones = 6;
    pop.vehicles = 3;
    pop.edge_servers = 1;
    pop.red_fraction = red_fraction;
    pop.gray_fraction = 0.3;
    pop.mobile_fraction = 0.3;
    sim::Rng pop_rng(seed + 2);
    things::build_population(*world, pop, pop_rng);
    world->start();

    std::vector<things::AssetId> collectors;
    for (const auto& a : world->assets()) {
      if (a.affiliation == things::Affiliation::kBlue &&
          (a.device_class == things::DeviceClass::kVehicle ||
           a.device_class == things::DeviceClass::kEdgeServer)) {
        collectors.push_back(a.id);
      }
    }
    discovery::DiscoveryConfig cfg;
    cfg.probe_period = sim::Duration::seconds(15);
    cfg.scan_period = sim::Duration::seconds(20);
    cfg.staleness = sim::Duration::seconds(90);
    svc = std::make_unique<discovery::DiscoveryService>(*world, *disp, collectors, cfg);
    svc->start();
  }
};

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E2: continuous discovery",
         "discovery must be continuous and resilient to churn and adversaries");

  row("%-14s %-10s %-12s", "churn(/min)", "recall", "dir_size");
  for (double kills_per_min : {0.0, 1.0, 3.0, 6.0}) {
    Scenario s(0.05, 99);
    // Churn process: kill a uniformly random live blue mote periodically.
    if (kills_per_min > 0.0) {
      auto rng = std::make_shared<sim::Rng>(7);
      s.sim.schedule_every(
          sim::Duration::seconds(60.0 / kills_per_min),
          [&s, rng]() {
            std::vector<things::AssetId> motes;
            for (const auto& a : s.world->assets()) {
              if (a.device_class == things::DeviceClass::kSensorMote &&
                  s.world->asset_live(a.id)) {
                motes.push_back(a.id);
              }
            }
            if (!motes.empty()) {
              s.world->destroy_asset(motes[static_cast<std::size_t>(rng->uniform_int(
                  0, static_cast<std::int64_t>(motes.size()) - 1))]);
            }
            return true;
          });
    }
    s.sim.run_until(sim::SimTime::seconds(600));
    row("%-14.1f %-10.3f %-12zu", kills_per_min, s.svc->recall(),
        s.svc->directory().size());
  }

  std::printf("\nadversary identification vs red fraction:\n");
  row("%-12s %-18s %-18s", "red_frac", "suspect_precision", "suspect_recall");
  for (double red : {0.02, 0.05, 0.1, 0.2}) {
    Scenario s(red, 123);
    s.sim.run_until(sim::SimTime::seconds(600));
    row("%-12.2f %-18.3f %-18.3f", red, s.svc->suspect_precision(),
        s.svc->suspect_recall());
  }
  return 0;
}
