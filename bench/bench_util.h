#pragma once
// Shared helpers for the experiment harnesses: aligned table printing and
// wall-clock timing. Every bench prints the series its experiment id in
// DESIGN.md §3 calls for; EXPERIMENTS.md records the expected shapes.

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/runner.h"
#include "trace/trace.h"

namespace iobt::bench {

/// Worker-pool size for replication sweeps: hardware concurrency clamped to
/// [1, 8]. The pool size never affects bench OUTPUT (ParallelRunner
/// aggregates in seed order), only wall time.
inline std::size_t bench_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(8, hw);
}

/// "0.912±0.013" cell for a replication sweep's SummaryStats.
inline std::string pm(const iobt::sim::SummaryStats& s, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f±%.*f", prec, s.mean, prec, s.stddev);
  return std::string(buf);
}

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

/// printf-style row helper so harness code reads like the table it emits.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Command-line options shared by the harnesses. `--trace=<file>` (or
/// `--trace <file>`) records the bench's instrumented run and writes
/// Chrome trace-event JSON there — open it in https://ui.perfetto.dev or
/// chrome://tracing. Unknown arguments are ignored so harness-specific
/// flags can coexist.
struct BenchArgs {
  std::string trace_path;  // empty = tracing off
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      out.trace_path = std::string(arg.substr(8));
    } else if (arg == "--trace" && i + 1 < argc) {
      out.trace_path = argv[++i];
    }
  }
  return out;
}

/// RAII trace capture around one instrumented run: enables the given
/// simulator's tracer, installs it as the calling thread's ambient tracer
/// (so harness-thread spans — e.g. mission synthesis — join the timeline),
/// and on destruction writes the JSON file plus a one-line summary. An
/// empty path makes the session inert, which is how benches run untraced.
class TraceSession {
 public:
  explicit TraceSession(iobt::sim::Simulator& sim, std::string path,
                        std::size_t capacity = 1u << 20)
      : path_(std::move(path)) {
    if (path_.empty()) return;
    tracer_ = &sim.tracer();
    tracer_->enable(capacity);
    use_.emplace(tracer_);
  }
  ~TraceSession() {
    if (!tracer_) return;
    use_.reset();
    tracer_->disable();
    std::ofstream os(path_);
    tracer_->write_json(os);
    std::printf("trace: wrote %zu records (%llu overwritten) to %s\n",
                tracer_->size(), static_cast<unsigned long long>(tracer_->dropped()),
                path_.c_str());
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
  iobt::trace::Tracer* tracer_ = nullptr;
  std::optional<iobt::trace::ScopedUse> use_;
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace iobt::bench
