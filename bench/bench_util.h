#pragma once
// Shared helpers for the experiment harnesses: aligned table printing and
// wall-clock timing. Every bench prints the series its experiment id in
// DESIGN.md §3 calls for; EXPERIMENTS.md records the expected shapes.

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "sim/runner.h"

namespace iobt::bench {

/// Worker-pool size for replication sweeps: hardware concurrency clamped to
/// [1, 8]. The pool size never affects bench OUTPUT (ParallelRunner
/// aggregates in seed order), only wall time.
inline std::size_t bench_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(8, hw);
}

/// "0.912±0.013" cell for a replication sweep's SummaryStats.
inline std::string pm(const iobt::sim::SummaryStats& s, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f±%.*f", prec, s.mean, prec, s.stddev);
  return std::string(buf);
}

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

/// printf-style row helper so harness code reads like the table it emits.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace iobt::bench
