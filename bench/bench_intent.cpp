// E5 — Game-theoretic command by intent.
//
// Paper claim (§IV-A): "by suitably choosing agent objective functions,
// one may be able to guarantee that the interactions between the multiple
// agents in the battlefield will converge to an equilibrium in which the
// desired objectives are met ... The approach is scalable because each
// agent is empowered to perform the operations needed to optimize its
// objective function without explicit coordination with other agents."
//
// Series regenerated:
//   (a) best-response convergence rounds & welfare ratio (vs centralized
//       greedy) as agent count scales,
//   (b) hierarchical decomposition: parallel rounds and welfare vs number
//       of subordinate commands,
//   (c) log-linear (noisy) dynamics closing the gap to best response.

#include "bench_util.h"
#include "intent/games.h"
#include "intent/security_game.h"
#include "sim/runner.h"

namespace {

struct BrTrial {
  double rounds = 0;
  double moves = 0;
  double welfare = 0;
  double ratio = 0;  // BR welfare / centralized-greedy welfare
};

}  // namespace

int main() {
  using namespace iobt;
  using namespace iobt::bench;

  header("E5: command by intent",
         "agents optimizing local objectives converge to mission equilibria, "
         "scalably and without explicit coordination");

  const sim::ParallelRunner runner(
      {.workers = bench_workers(), .repro_program = "bench_intent"});
  constexpr std::size_t kReps = 8;

  row("%-8s %-8s %-10s %-10s %-16s %-16s", "agents", "tasks", "BR_rounds",
      "BR_moves", "welfareBR", "BR/central");
  for (std::size_t n : {10u, 25u, 50u, 100u, 200u, 400u}) {
    const std::size_t tasks = n / 3 + 2;
    const auto seeds = sim::ParallelRunner::seed_range(n * 31, kReps);
    const auto outcome =
        runner.run<BrTrial>(seeds, [&](sim::ReplicationContext& ctx) {
          sim::Rng rng(ctx.seed);
          const auto g = intent::TaskAllocationGame::random_instance(n, tasks, rng);
          const auto br = intent::best_response_dynamics(g);
          const auto ct = intent::centralized_greedy(g);
          BrTrial out;
          out.rounds = static_cast<double>(br.rounds);
          out.moves = static_cast<double>(br.moves);
          out.welfare = br.final_welfare;
          out.ratio =
              ct.final_welfare > 0 ? br.final_welfare / ct.final_welfare : 1.0;
          return out;
        });
    row("%-8zu %-8zu %-10.1f %-10.1f %-16s %-16s", n, tasks,
        outcome.stats([](const BrTrial& o) { return o.rounds; }).mean,
        outcome.stats([](const BrTrial& o) { return o.moves; }).mean,
        pm(outcome.stats([](const BrTrial& o) { return o.welfare; }), 2).c_str(),
        pm(outcome.stats([](const BrTrial& o) { return o.ratio; })).c_str());
  }

  std::printf("\nhierarchical decomposition (200 agents, 68 tasks):\n");
  row("%-10s %-16s %-12s %-14s", "clusters", "parallel_rounds", "welfare",
      "vs_flat_BR");
  {
    sim::Rng rng(7777);
    const auto g = intent::TaskAllocationGame::random_instance(200, 68, rng);
    const auto flat = intent::best_response_dynamics(g);
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      const auto h = intent::hierarchical_decomposition(g, k);
      row("%-10zu %-16zu %-12.2f %-14.3f", k, h.rounds, h.final_welfare,
          flat.final_welfare > 0 ? h.final_welfare / flat.final_welfare : 1.0);
    }
  }

  std::printf(
      "\nsecurity game: jammer vs route mixing (6x6 grid, corner to corner):\n");
  {
    const auto topo = iobt::net::Topology::grid(6, 6);
    std::vector<iobt::net::NodeId> jammable;
    for (iobt::net::NodeId v = 1; v < 35; ++v) jammable.push_back(v);
    row("%-10s %-14s %-16s %-12s", "routes", "value_lower", "best_pure_value",
        "mix_gain");
    for (std::size_t k : {1u, 2u, 3u, 4u}) {
      const auto routes = intent::diverse_routes(topo, 0, 35, k);
      const auto g = intent::make_routing_game(routes, jammable, 0.1);
      const auto eq = intent::solve_fictitious_play(g, 30000);
      double best_pure = 0.0;
      for (std::size_t r = 0; r < routes.size(); ++r) {
        double worst = 1e9;
        for (std::size_t a = 0; a < jammable.size(); ++a) {
          worst = std::min(worst, g.payoff[r][a]);
        }
        best_pure = std::max(best_pure, worst);
      }
      row("%-10zu %-14.3f %-16.3f %-12.3f", routes.size(), eq.value_lower,
          best_pure, eq.value_lower - best_pure);
    }
  }

  std::printf("\nlog-linear dynamics vs temperature (50 agents, 18 tasks):\n");
  row("%-12s %-12s %-14s", "temperature", "welfare", "vs_BR");
  {
    sim::Rng grng(31);
    const auto g = intent::TaskAllocationGame::random_instance(50, 18, grng);
    const auto br = intent::best_response_dynamics(g);
    for (double temp : {0.5, 0.1, 0.02, 0.005}) {
      sim::Rng rng(static_cast<std::uint64_t>(temp * 10000) + 5);
      const auto ll = intent::log_linear_dynamics(g, rng, temp, 30000);
      row("%-12.3f %-12.2f %-14.3f", temp, ll.final_welfare,
          br.final_welfare > 0 ? ll.final_welfare / br.final_welfare : 1.0);
    }
  }
  return 0;
}
