// E1 — Assured synthesis at scale.
//
// Paper claim (§III): "it should be possible to assemble (or re-assemble
// ...) composite assets comprising an IoBT of possibly 1,000s to 10,000s
// of nodes on demand and within an appropriately short time (e.g.,
// minutes, if needed)".
//
// Series regenerated:
//   (a) greedy composition wall time / solution size vs candidate count
//       N in {1k, 2k, 4k, 8k, 16k},
//   (b) solver quality ladder (greedy vs local-search vs exact) on small
//       instances where exact search is tractable,
//   (c) repair-vs-recompose work after losing 10% of members.

#include <memory>

#include "bench_util.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "synthesis/composer.h"
#include "flow/placement.h"
#include "synthesis/decompose.h"

namespace {

using namespace iobt;
using synthesis::Candidate;
using synthesis::Composer;
using synthesis::Composite;
using synthesis::MissionSpec;
using synthesis::Solver;

/// Synthetic recruitment pool: mixed sensors spread over a city-sized
/// area, trust mostly high, heterogeneous cost.
std::vector<Candidate> make_pool(std::size_t n, sim::Rng& rng) {
  std::vector<Candidate> pool;
  pool.reserve(n);
  const double side = 4000.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Candidate c;
    c.asset = i;
    c.position = {rng.uniform(0, side), rng.uniform(0, side)};
    const std::size_t kind = rng.categorical({0.4, 0.3, 0.2, 0.1});
    switch (kind) {
      case 0:
        c.sensors = {{things::Modality::kCamera, rng.uniform(100, 250), 0.8, 0.02}};
        c.cost = 1.0;
        break;
      case 1:
        c.sensors = {{things::Modality::kAcoustic, rng.uniform(150, 300), 0.75, 0.02}};
        c.cost = 1.0;
        break;
      case 2:  // drone-grade
        c.sensors = {{things::Modality::kCamera, rng.uniform(300, 500), 0.9, 0.02},
                     {things::Modality::kRadar, rng.uniform(400, 700), 0.85, 0.02}};
        c.compute.flops = 2e10;
        c.cost = 3.0;
        break;
      default:  // edge compute
        c.compute.flops = 1e12;
        c.cost = 5.0;
        break;
    }
    c.trust = rng.uniform(0.55, 1.0);
    pool.push_back(std::move(c));
  }
  return pool;
}

MissionSpec city_spec() {
  MissionSpec spec;
  spec.name = "bench";
  spec.sensing.push_back(
      {things::Modality::kCamera, {{0, 0}, {4000, 4000}}, 0.85, 0.5, 16});
  spec.sensing.push_back(
      {things::Modality::kAcoustic, {{0, 0}, {4000, 4000}}, 0.6, 0.5, 12});
  spec.compute.total_flops = 5e12;
  return spec;
}

double total_cost(const std::vector<Candidate>& pool, const Composite& c) {
  double s = 0;
  for (std::size_t m : c.member_indices) s += pool[m].cost;
  return s;
}

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E1: synthesis scale",
         "assemble composites of 1,000s-10,000s of nodes within minutes");

  row("%-8s %-10s %-12s %-10s %-12s %-10s", "N", "solver", "time_ms", "members",
      "evaluations", "feasible");
  for (std::size_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    sim::Rng rng(1000 + n);
    auto pool = make_pool(n, rng);
    Composer comp(city_spec(), pool, [](std::size_t) { return 1; });
    WallTimer t;
    const Composite c = comp.compose(Solver::kGreedy);
    row("%-8zu %-10s %-12.1f %-10zu %-12llu %-10s", n, "greedy", t.ms(),
        c.member_assets.size(), static_cast<unsigned long long>(c.evaluations),
        c.assurance.meets_spec ? "yes" : "no");
  }
  for (std::size_t n : {1000u, 2000u}) {
    sim::Rng rng(1000 + n);
    auto pool = make_pool(n, rng);
    Composer comp(city_spec(), pool, [](std::size_t) { return 1; });
    WallTimer t;
    const Composite c = comp.compose(Solver::kLocalSearch);
    row("%-8zu %-10s %-12.1f %-10zu %-12llu %-10s", n, "localsrch", t.ms(),
        c.member_assets.size(), static_cast<unsigned long long>(c.evaluations),
        c.assurance.meets_spec ? "yes" : "no");
  }

  std::printf("\nsolver quality ladder (small instances, cost = recruited cost):\n");
  row("%-8s %-10s %-10s %-10s", "seed", "greedy", "localsrch", "exact");
  {
    struct LadderOut {
      double greedy = 0, localsrch = 0, exact = 0;
    };
    const sim::ParallelRunner runner(
        {.workers = bench::bench_workers(), .repro_program = "bench_synthesis"});
    const auto seeds = sim::ParallelRunner::seed_range(1, 8);
    const auto outcome =
        runner.run<LadderOut>(seeds, [](sim::ReplicationContext& ctx) {
          sim::Rng rng(ctx.seed);
          std::vector<Candidate> pool;
          for (std::uint32_t i = 0; i < 18; ++i) {
            Candidate c;
            c.asset = i;
            c.position = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
            c.sensors = {
                {iobt::things::Modality::kCamera, rng.uniform(250, 500), 0.9, 0.02}};
            c.cost = rng.uniform(1.0, 3.0);
            pool.push_back(std::move(c));
          }
          MissionSpec spec;
          spec.sensing.push_back(
              {iobt::things::Modality::kCamera, {{0, 0}, {1000, 1000}}, 0.6, 0.5, 6});
          Composer comp(spec, pool, [](std::size_t) { return 1; });
          LadderOut out;
          out.greedy = total_cost(pool, comp.compose(Solver::kGreedy));
          out.localsrch = total_cost(pool, comp.compose(Solver::kLocalSearch));
          out.exact = total_cost(pool, comp.compose(Solver::kExact));
          return out;
        });
    for (const auto& r : outcome.replications) {
      row("%-8llu %-10.2f %-10.2f %-10.2f",
          static_cast<unsigned long long>(r.seed), r.payload.greedy,
          r.payload.localsrch, r.payload.exact);
    }
    row("%-8s %-10s %-10s %-10s", "mean±sd",
        bench::pm(outcome.stats([](const LadderOut& o) { return o.greedy; }), 2)
            .c_str(),
        bench::pm(outcome.stats([](const LadderOut& o) { return o.localsrch; }), 2)
            .c_str(),
        bench::pm(outcome.stats([](const LadderOut& o) { return o.exact; }), 2)
            .c_str());
  }

  std::printf(
      "\nhierarchical decomposition (N=8000, camera+acoustic city spec):\n");
  row("%-8s %-12s %-14s %-16s %-10s %-10s", "tiles", "time_ms", "total_evals",
      "critical_path", "members", "feasible");
  for (std::size_t tiles : {1u, 2u, 4u}) {
    sim::Rng rng(9000);
    auto pool = make_pool(8000, rng);
    WallTimer t;
    const auto d = iobt::synthesis::compose_decomposed(
        city_spec(), pool, [](std::size_t) { return 1; }, tiles);
    row("%-8zu %-12.1f %-14llu %-16llu %-10zu %-10s", tiles, t.ms(),
        static_cast<unsigned long long>(d.total_evaluations),
        static_cast<unsigned long long>(d.critical_path_evaluations),
        d.composite.member_assets.size(),
        d.composite.assurance.meets_spec ? "yes" : "no");
  }

  std::printf(
      "\nfunctional composition: tracking-service placement (4..32 cameras):\n");
  row("%-10s %-12s %-14s %-16s %-10s", "cameras", "time_ms", "latency_s",
      "net_cost(bps*h)", "feasible");
  for (std::size_t cams : {4u, 8u, 16u, 32u}) {
    iobt::flow::PlacementProblem p;
    p.graph = iobt::flow::make_tracking_service(cams, 2.0);
    // Hosts: one mote per camera + 2 vehicles + 1 edge server, 2 hops apart.
    for (std::size_t i = 0; i < cams; ++i) {
      p.hosts.push_back({static_cast<iobt::flow::HostId>(i), 2e6});
      p.pinned.push_back({static_cast<iobt::flow::OperatorId>(i),
                          static_cast<iobt::flow::HostId>(i)});
    }
    p.hosts.push_back({static_cast<iobt::flow::HostId>(cams), 5e9});
    p.hosts.push_back({static_cast<iobt::flow::HostId>(cams + 1), 5e9});
    p.hosts.push_back({static_cast<iobt::flow::HostId>(cams + 2), 1e12});
    const std::size_t nh = p.hosts.size();
    p.hops.assign(nh, std::vector<int>(nh, 2));
    for (std::size_t i = 0; i < nh; ++i) p.hops[i][i] = 0;
    // Sink pinned to the edge server.
    p.pinned.push_back(
        {static_cast<iobt::flow::OperatorId>(cams + 3),
         static_cast<iobt::flow::HostId>(nh - 1)});
    WallTimer t;
    const auto pl = iobt::flow::place(p);
    row("%-10zu %-12.1f %-14.3f %-16.0f %-10s", cams, t.ms(),
        pl.critical_path_latency_s, pl.network_cost_bps_hops,
        pl.feasible ? "yes" : "no");
  }

  std::printf("\nre-synthesis after 10%% member loss (N=4000):\n");
  row("%-12s %-12s %-12s", "mode", "time_ms", "evaluations");
  {
    sim::Rng rng(4242);
    auto pool = make_pool(4000, rng);
    Composer comp(city_spec(), pool, [](std::size_t) { return 1; });
    Composite c = comp.compose(Solver::kGreedy);
    std::vector<std::uint32_t> lost;
    for (std::size_t i = 0; i < c.member_assets.size() / 10; ++i) {
      lost.push_back(c.member_assets[i]);
    }
    WallTimer t;
    const Composite repaired = comp.repair(c, lost);
    row("%-12s %-12.1f %-12llu", "repair", t.ms(),
        static_cast<unsigned long long>(repaired.evaluations));
    t.reset();
    const Composite fresh = comp.compose(Solver::kGreedy);
    row("%-12s %-12.1f %-12llu", "recompose", t.ms(),
        static_cast<unsigned long long>(fresh.evaluations));
  }
  return 0;
}
