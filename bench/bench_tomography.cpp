// E7 — Network tomography and failure localization.
//
// Paper claim (§V-A, refs [19-22]): system health "needs to be inferred
// (and damage, if any, assessed) without direct component observation";
// monitor placement should maximize identifiability.
//
// Series regenerated:
//   (a) link identifiability vs number of monitors (greedy placement vs
//       random placement) on grid and random-geometric topologies,
//   (b) metric estimation error vs measurement noise,
//   (c) failure-localization precision/recall vs number of simultaneous
//       link failures.

#include <cmath>

#include "bench_util.h"
#include "diag/tomography.h"
#include "sim/runner.h"

namespace {

using namespace iobt;

std::vector<net::NodeId> random_monitors(std::size_t n_nodes, std::size_t k,
                                         sim::Rng& rng) {
  auto idx = rng.sample_indices(n_nodes, k);
  std::vector<net::NodeId> out;
  for (auto i : idx) out.push_back(static_cast<net::NodeId>(i));
  return out;
}

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E7: network tomography",
         "infer internal health from end-to-end observations; place monitors "
         "for identifiability");

  const sim::ParallelRunner runner(
      {.workers = bench::bench_workers(), .repro_program = "bench_tomography"});

  const auto grid = net::Topology::grid(5, 5);
  row("%-10s %-16s %-16s", "monitors", "greedy_ident", "random_ident");
  for (std::size_t k : {2u, 4u, 6u, 8u, 12u}) {
    const auto greedy = diag::greedy_monitor_placement(grid, k);
    const double gi = diag::TomographySystem(grid, greedy).identifiability();
    constexpr std::size_t kReps = 8;
    std::vector<std::uint64_t> seeds(kReps);
    for (std::size_t t = 0; t < kReps; ++t) seeds[t] = 50 + t * 17 + k;
    const auto outcome =
        runner.run<double>(seeds, [&](sim::ReplicationContext& ctx) {
          sim::Rng rng(ctx.seed);
          return diag::TomographySystem(grid, random_monitors(25, k, rng))
              .identifiability();
        });
    row("%-10zu %-16.3f %-16s", k, gi,
        bench::pm(outcome.stats([](const double& x) { return x; })).c_str());
  }

  std::printf("\nestimation error vs measurement noise (5x5 grid, 12 monitors):\n");
  row("%-12s %-20s", "noise_sd", "rmse(identifiable)");
  {
    const auto monitors = diag::greedy_monitor_placement(grid, 12);
    diag::TomographySystem sys(grid, monitors);
    std::vector<double> truth(sys.link_count());
    sim::Rng mrng(3);
    for (double& x : truth) x = mrng.uniform(1.0, 5.0);
    const auto ident = sys.identifiable_links();
    for (double noise : {0.0, 0.01, 0.05, 0.2, 0.5}) {
      sim::Rng nrng(9 + static_cast<std::uint64_t>(noise * 1000));
      const auto est = sys.estimate(sys.measure(truth, noise, &nrng));
      double se = 0;
      std::size_t n = 0;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        if (!ident[i]) continue;
        se += (est[i] - truth[i]) * (est[i] - truth[i]);
        ++n;
      }
      row("%-12.2f %-20.4f", noise, n ? std::sqrt(se / static_cast<double>(n)) : 0.0);
    }
  }

  std::printf("\nfailure localization (5x5 grid, all-node monitors):\n");
  row("%-10s %-12s %-12s", "failures", "precision", "recall");
  {
    std::vector<net::NodeId> all;
    for (net::NodeId v = 0; v < 25; ++v) all.push_back(v);
    diag::TomographySystem sys(grid, all);
    struct PrTrial {
      double precision = 0;
      double recall = 0;
    };
    for (std::size_t nfail : {1u, 2u, 4u, 6u}) {
      constexpr std::size_t kReps = 10;
      std::vector<std::uint64_t> seeds(kReps);
      for (std::size_t t = 0; t < kReps; ++t) seeds[t] = 100 + t * 13 + nfail;
      const auto outcome =
          runner.run<PrTrial>(seeds, [&](sim::ReplicationContext& ctx) {
            sim::Rng rng(ctx.seed);
            const auto failed_idx = rng.sample_indices(sys.link_count(), nfail);
            std::vector<bool> is_failed(sys.link_count(), false);
            for (auto i : failed_idx) is_failed[i] = true;
            std::vector<bool> path_ok;
            for (const auto& p : sys.paths()) {
              bool ok = true;
              for (std::size_t li : p.link_indices) ok &= !is_failed[li];
              path_ok.push_back(ok);
            }
            const auto d = sys.localize_failures(path_ok);
            std::size_t tp = 0;
            for (auto li : d.minimal_explanation) tp += is_failed[li] ? 1 : 0;
            PrTrial out;
            out.precision =
                d.minimal_explanation.empty()
                    ? 1.0
                    : static_cast<double>(tp) /
                          static_cast<double>(d.minimal_explanation.size());
            out.recall = static_cast<double>(tp) / static_cast<double>(nfail);
            return out;
          });
      row("%-10zu %-12.3f %-12.3f", nfail,
          outcome.stats([](const PrTrial& o) { return o.precision; }).mean,
          outcome.stats([](const PrTrial& o) { return o.recall; }).mean);
    }
  }
  return 0;
}
