// E8 — Cost of learning and topology activation.
//
// Paper claim (§V-B, refs [28-33]): "one might activate different network
// topologies based on the trade-off between network learning and
// communication. This work may inform design of dynamic IoBTs that
// self-configure to jointly optimize both learning cost and decision
// making accuracy."
//
// Series regenerated:
//   (a) accuracy-vs-cumulative-bytes curves for ring / k-nearest / star /
//       full-mesh gossip topologies (the Pareto front),
//   (b) adaptive activation policy (start cheap, escalate on stall) vs
//       the best static choices: bytes to reach a target accuracy.

#include "bench_util.h"
#include "learn/cost.h"

namespace {

using namespace iobt;

std::vector<learn::NamedTopology> topology_menu(std::size_t n, sim::Rng& rng) {
  std::vector<sim::Vec2> pos(n);
  for (auto& p : pos) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
  net::Topology full(n);
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) full.add_edge(a, b);
  }
  return {
      {"ring", net::Topology::ring(n), 1.0},
      {"knn3", net::Topology::k_nearest(pos, 3), 1.0},
      {"star", net::Topology::star(n), 1.0},
      {"full", full, 1.0},
  };
}

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E8: cost-aware learning topologies",
         "activate topologies based on the learning-vs-communication trade-off");

  const std::size_t n = 12;
  sim::Rng data_rng(77);
  const auto train = learn::make_blobs(1800, 5, 2.5, 0.05, data_rng);
  const auto test = learn::make_blobs(400, 5, 2.5, 0.05, data_rng);
  sim::Rng menu_rng(5);
  const auto menu = topology_menu(n, menu_rng);

  const std::size_t rounds = 25;
  std::printf("accuracy at checkpoints (label_skew=1.0, 2 local steps):\n");
  row("%-8s %-12s %-10s %-10s %-10s %-12s", "topo", "bytes_total", "acc@5", "acc@12",
      "acc@25", "KB/round");
  std::vector<learn::CostCurve> curves;
  for (const auto& nt : menu) {
    sim::Rng rng(900 + sim::fnv1a(nt.name));
    const auto c = learn::evaluate_topology(nt, train, test, 5, rounds, 2, 8, 0.05,
                                            1.0, rng);
    curves.push_back(c);
    row("%-8s %-12llu %-10.3f %-10.3f %-10.3f %-12.1f", nt.name.c_str(),
        static_cast<unsigned long long>(c.points.back().cumulative_bytes),
        c.points[4].accuracy, c.points[11].accuracy, c.points[24].accuracy,
        static_cast<double>(c.points.back().cumulative_bytes) / rounds / 1024.0);
  }

  std::printf("\nbytes to reach target accuracy:\n");
  row("%-8s %-14s %-14s", "topo", "bytes@0.85", "bytes@0.88");
  auto bytes_to = [](const learn::CostCurve& c, double target) -> long long {
    for (const auto& p : c.points) {
      if (p.accuracy >= target) return static_cast<long long>(p.cumulative_bytes);
    }
    return -1;
  };
  for (const auto& c : curves) {
    row("%-8s %-14lld %-14lld", c.topology.c_str(), bytes_to(c, 0.85),
        bytes_to(c, 0.88));
  }

  std::printf("\nadaptive activation (ring -> knn3 -> full, patience=3):\n");
  {
    std::vector<learn::NamedTopology> options = {menu[0], menu[1], menu[3]};
    sim::Rng rng(1234);
    const auto res = learn::cost_aware_train(options, train, test, 5, rounds, 2, 8,
                                             0.05, 1.0, 3, 0.005, rng);
    long long b85 = -1, b90 = -1;
    for (const auto& p : res.curve.points) {
      if (b85 < 0 && p.accuracy >= 0.85) b85 = static_cast<long long>(p.cumulative_bytes);
      if (b90 < 0 && p.accuracy >= 0.88) b90 = static_cast<long long>(p.cumulative_bytes);
    }
    row("%-8s %-14lld %-14lld final_acc=%.3f total_bytes=%llu", "adaptive", b85, b90,
        res.final_accuracy, static_cast<unsigned long long>(res.total_bytes));
    std::printf("topology per round: ");
    for (auto a : res.active_topology_per_round) std::printf("%zu", a);
    std::printf("  (0=ring 1=knn3 2=full)\n");
  }
  return 0;
}
