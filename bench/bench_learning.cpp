// E6 — Resilient distributed learning.
//
// Paper claims (§V-B): distributed learning must "tolerate a wide array of
// failures and adversarial compromises of learning nodes"; "what is the
// impact of time-varying topology (such as that caused by failures due to
// an adversary) on the correctness and convergence of distributed learning
// algorithms?"
//
// Series regenerated:
//   (a) final accuracy vs Byzantine worker fraction for mean / Krum /
//       coordinate-median / trimmed-mean aggregation (parameter server),
//   (b) gossip accuracy & consensus disagreement vs per-round link-up
//       probability (time-varying topology),
//   (c) non-IID label skew interaction with robust rules.

#include "bench_util.h"
#include "learn/federated.h"

int main() {
  using namespace iobt;
  using namespace iobt::bench;
  using learn::AggregationRule;

  header("E6: resilient distributed learning",
         "learning must tolerate adversarial compromise and topology churn");

  sim::Rng data_rng(21);
  const auto train = learn::make_blobs(2000, 6, 3.5, 0.02, data_rng);
  const auto test = learn::make_blobs(500, 6, 3.5, 0.02, data_rng);

  row("%-10s %-8s %-8s %-8s %-8s", "byz_frac", "mean", "krum", "median", "trimmed");
  const AggregationRule rules[] = {AggregationRule::kMean, AggregationRule::kKrum,
                                   AggregationRule::kMedian,
                                   AggregationRule::kTrimmedMean};
  for (double frac : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    double acc[4];
    for (int r = 0; r < 4; ++r) {
      learn::FederatedConfig cfg;
      cfg.workers = 20;
      cfg.rounds = 25;
      cfg.byzantine_count = static_cast<std::size_t>(frac * 20 + 1e-9);
      cfg.byzantine_mode = learn::ByzantineMode::kSignFlip;
      cfg.assumed_f = cfg.byzantine_count;
      cfg.rule = rules[r];
      sim::Rng rng(100 + static_cast<std::uint64_t>(frac * 100) + r);
      acc[r] = learn::federated_train(train, test, 6, cfg, rng).final_accuracy;
    }
    row("%-10.1f %-8.3f %-8.3f %-8.3f %-8.3f", frac, acc[0], acc[1], acc[2], acc[3]);
  }

  std::printf(
      "\ngossip under link churn (ring of 12, full label skew, mean agg):\n");
  row("%-14s %-10s %-12s", "link_up_prob", "acc@20", "acc@60");
  for (double up : {1.0, 0.8, 0.5, 0.3, 0.1}) {
    learn::GossipConfig cfg;
    cfg.rounds = 60;
    cfg.local_steps = 2;
    cfg.lr = 0.05;
    cfg.label_skew = 1.0;  // nodes see one label: consensus is mandatory
    cfg.link_up_probability = up;
    sim::Rng rng(200 + static_cast<std::uint64_t>(up * 100));
    const auto res = learn::gossip_train(net::Topology::ring(12), train, test, 6, cfg,
                                         rng);
    row("%-14.1f %-10.3f %-12.3f", up, res.accuracy_per_round[19],
        res.final_accuracy);
  }

  std::printf("\nByzantine gossip (ring of 12, 2 attackers):\n");
  row("%-10s %-10s", "rule", "accuracy");
  for (auto rule : {AggregationRule::kMean, AggregationRule::kMedian,
                    AggregationRule::kTrimmedMean, AggregationRule::kKrum}) {
    learn::GossipConfig cfg;
    cfg.rounds = 40;
    cfg.byzantine_count = 2;
    cfg.assumed_f = 2;
    cfg.rule = rule;
    sim::Rng rng(300);
    const auto res = learn::gossip_train(net::Topology::ring(12), train, test, 6, cfg,
                                         rng);
    row("%-10s %-10.3f", learn::to_string(rule).c_str(), res.final_accuracy);
  }

  std::printf("\nnon-IID label skew (20 workers, 20%% Byzantine, Krum):\n");
  row("%-10s %-10s", "skew", "accuracy");
  for (double skew : {0.0, 0.5, 0.9}) {
    learn::FederatedConfig cfg;
    cfg.workers = 20;
    cfg.rounds = 30;
    cfg.byzantine_count = 4;
    cfg.assumed_f = 4;
    cfg.rule = AggregationRule::kKrum;
    cfg.label_skew = skew;
    sim::Rng rng(400 + static_cast<std::uint64_t>(skew * 10));
    row("%-10.1f %-10.3f", skew,
        learn::federated_train(train, test, 6, cfg, rng).final_accuracy);
  }
  return 0;
}
