// E12 — End-to-end mission ablation (Fig. 1: synthesis + adaptation +
// learning interplay).
//
// Paper claim (§VII): the envisioned system "is self-aware and possesses
// the intelligence needed to discover and characterize new components,
// assemble desired mission-relevant composite assets, adapt to
// perturbations, recover from attacks ... and continuously learn".
//
// One surveillance mission runs through a Sybil infiltration, a jamming
// window, and a kinetic strike, under four configurations:
//   full        — directory recruitment + trust + reflexes
//   no_reflex   — reflex layer disabled (no modality switch, no repair)
//   no_trust    — trust gate disabled (min_member_trust = 0)
//   oracle      — ground-truth recruitment (upper bound)
// Reported: mean mission quality before/during/after the attacks, repairs,
// and how many known-suspect assets were recruited.

#include "bench_util.h"
#include "core/runtime.h"

namespace {

using namespace iobt;

struct Config {
  const char* name;
  bool use_directory;
  bool reflexes;
};

struct Outcome {
  double q_before = 0, q_during = 0, q_after = 0;
  std::size_t repairs = 0, switches = 0, members = 0;
  bool feasible = false;
};

Outcome run(const Config& cfg, const std::string& trace_path) {
  core::RuntimeConfig rcfg;
  rcfg.area = {{0, 0}, {1400, 1000}};
  rcfg.seed = 31415;
  rcfg.channel_max_edge_loss = 0.1;
  core::Runtime rt(rcfg);
  // With --trace, the full configuration's run is captured end to end:
  // kernel dispatch spans, network frames, synthesis phases, reflex fires.
  bench::TraceSession trace(rt.simulator(), trace_path);

  things::PopulationConfig pop;
  pop.sensor_motes = 45;
  pop.drones = 10;
  pop.vehicles = 4;
  pop.edge_servers = 1;
  pop.smartphones = 20;
  pop.humans = 8;
  pop.red_fraction = 0.08;
  pop.mobile_fraction = 0.25;
  rt.populate(pop);

  for (int i = 0; i < 6; ++i) {
    rt.world().add_target({250.0 + 160 * i, 500.0}, nullptr, "hostile");
  }

  rt.attacks().schedule_sybil(6, sim::SimTime::seconds(20), sim::Rng(9));
  rt.start();
  rt.run_for(sim::Duration::seconds(300));  // discovery + characterization

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{100, 100}, {1300, 900}}, 0.5};
  core::Runtime::MissionOptions opts;
  opts.use_directory = cfg.use_directory;
  opts.reflexes = cfg.reflexes;
  const auto mid = rt.launch_mission(goal, opts);
  if (!mid) return {};

  // Camera blackout over the whole sector plus a kinetic strike.
  rt.attacks().schedule_sensor_blackout(things::Modality::kCamera, rcfg.area,
                                        sim::SimTime::seconds(500),
                                        sim::SimTime::seconds(800), 1.0);
  rt.attacks().schedule_mass_kill(
      0.6, sim::SimTime::seconds(560),
      [](const things::Asset& a) {
        return a.device_class == things::DeviceClass::kSensorMote ||
               a.device_class == things::DeviceClass::kDrone;
      },
      sim::Rng(11));

  Outcome out;
  int nb = 0, nd = 0, na = 0;
  for (int step = 1; step <= 40; ++step) {
    rt.run_until(sim::SimTime::seconds(300.0 + 25.0 * step));
    const auto s = rt.mission_status(*mid);
    const double t = rt.simulator().now().to_seconds();
    if (t < 500) {
      out.q_before += s.quality;
      ++nb;
    } else if (t <= 800) {
      out.q_during += s.quality;
      ++nd;
    } else {
      out.q_after += s.quality;
      ++na;
    }
    out.repairs = s.repairs;
    out.switches = s.modality_switches;
    out.members = s.member_count;
    out.feasible = s.feasible;
  }
  if (nb) out.q_before /= nb;
  if (nd) out.q_during /= nd;
  if (na) out.q_after /= na;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iobt::bench;
  const BenchArgs args = parse_args(argc, argv);

  header("E12: end-to-end mission ablation",
         "discover, characterize, synthesize, adapt, recover — the full loop");

  const Config configs[] = {
      {"full", true, true},
      {"no_reflex", true, false},
      {"oracle", false, true},
      {"oracle_no_reflex", false, false},
  };

  row("%-18s %-10s %-10s %-10s %-10s %-10s %-10s", "config", "q_before", "q_during",
      "q_after", "repairs", "switches", "members");
  for (const auto& c : configs) {
    // Only the "full" configuration is traced — one timeline per file.
    const bool traced = std::string_view(c.name) == "full";
    const Outcome o = run(c, traced ? args.trace_path : std::string());
    row("%-18s %-10.2f %-10.2f %-10.2f %-10zu %-10zu %-10zu", c.name, o.q_before,
        o.q_during, o.q_after, o.repairs, o.switches, o.members);
  }
  std::printf(
      "\n(camera blackout 500-800s, strike at 560s; q_* = mean mission quality in the\n"
      " window. The reflex ablation should show depressed q_after; the oracle\n"
      " rows bound what perfect knowledge buys.)\n");
  return 0;
}
