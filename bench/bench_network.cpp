// N1/N2 — Wireless-substrate scaling harness.
//
// §I's scale claim ("1,000s to 10,000s of things") dies first in the
// network layer: a one-hop broadcast that scans every endpoint and a
// connectivity snapshot that tests all pairs are both O(n^2), which is the
// difference between a 16k-node sweep finishing in seconds or in hours.
// This bench ladders n over {1k..128k} at CONSTANT radio density (the area
// grows with n, so expected degree stays ~10 and the ladder measures
// scaling, not density drift) and times three things:
//
//   * broadcast fan-out, spatial grid on vs off (brute rungs stop at 16k —
//     the O(n^2) columns would dominate the ladder's wall time past that);
//   * full connectivity rebuilds, grid vs brute (same 16k brute ceiling);
//   * connectivity MAINTENANCE under churn — per round, ~1% of nodes move
//     and the current topology is re-read via topology_view(). Rebuild
//     mode pays a full O(n) scan per refresh; incremental mode patches the
//     persistent edge store from the 3x3 neighborhood diff and the refresh
//     is O(1). This is the metric the incremental store exists for.
//
// Each rung also reports bytes/node from Network::memory_footprint() — the
// structure-of-arrays slab accounting that must stay flat as n grows.
//
// The part the numbers cannot show — that neither the grid nor the
// incremental store changes anything BUT wall time — is verified three
// ways: per-rung edge-set + digest equality across {brute, grid} x
// {rebuild, incremental} (brute legs up to 16k), post-churn edge-set
// equality between incremental and rebuild substrates driven through an
// identical move sequence, and a mobile routed-traffic scenario swept
// over seeds on the ParallelRunner whose metric digests must be
// bit-identical across all three substrate configs AND across worker
// counts. Any mismatch exits nonzero. Emits BENCH_network.json.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "things/mobility.h"

namespace {

using namespace iobt;

constexpr double kRangeM = 150.0;
constexpr double kTargetDegree = 10.0;
constexpr int kBroadcasts = 1024;
constexpr int kConnRebuilds = 3;
constexpr int kChurnRounds = 20;
constexpr std::size_t kBruteCeiling = 16000;
constexpr std::size_t kMobilityNodes = 2000;
constexpr std::size_t kMobilitySeeds = 6;
constexpr int kMobilityTicks = 20;
constexpr int kRouteSources = 4;
constexpr int kRouteDests = 4;

/// Area side that keeps expected radio degree at kTargetDegree for n
/// nodes: density = degree / (pi r^2), side = sqrt(n / density).
double side_for(std::size_t n) {
  const double density = kTargetDegree / (3.14159265358979 * kRangeM * kRangeM);
  return std::sqrt(static_cast<double>(n) / density);
}

/// One network instance: n nodes uniform in a density-normalized square.
/// Identical seed => identical node placement across all substrate configs.
struct Substrate {
  sim::Simulator sim;
  net::Network net;
  std::size_t n;

  Substrate(std::size_t nodes, std::uint64_t seed, bool grid, bool incremental)
      : net(sim, net::ChannelModel(), sim::Rng(seed ^ 0xBADC0DEULL)), n(nodes) {
    net.set_spatial_index_enabled(grid);
    net.set_incremental_connectivity_enabled(incremental);
    sim::Rng rng(seed);
    const double side = side_for(n);
    net::RadioProfile radio;
    radio.range_m = kRangeM;
    for (std::size_t i = 0; i < n; ++i) {
      net.add_node({rng.uniform(0, side), rng.uniform(0, side)}, radio);
    }
  }
};

net::Message ping() {
  net::Message m;
  m.kind = "bench.ping";
  m.size_bytes = 32;
  return m;
}

/// Times the broadcast issue loop only (candidate enumeration + frame
/// scheduling — the part the grid accelerates); the delivery events are
/// drained untimed afterwards so the digest covers the full outcome.
double time_broadcasts(Substrate& s) {
  bench::WallTimer t;
  for (int i = 0; i < kBroadcasts; ++i) {
    s.net.broadcast(static_cast<net::NodeId>((static_cast<std::size_t>(i) * 7919) % s.n),
                    ping());
  }
  const double ms = t.ms();
  s.sim.run();
  return ms;
}

double time_connectivity(Substrate& s, std::size_t* edges) {
  bench::WallTimer t;
  for (int i = 0; i < kConnRebuilds; ++i) {
    const net::Topology topo = s.net.connectivity();
    *edges = topo.edge_count();
  }
  return t.ms();
}

/// The churn loop the incremental store exists for: each round moves ~1%
/// of the nodes, then re-reads the current topology (a route planner or
/// analytics pass would do exactly this). Identical seed => identical move
/// sequence across substrates, so the post-churn edge sets must match.
double time_maintenance(Substrate& s, std::uint64_t seed, std::size_t* edges) {
  sim::Rng rng(seed ^ 0xC0FFEEULL);
  const double side = side_for(s.n);
  const std::size_t movers = s.n < 100 ? 1 : s.n / 100;
  bench::WallTimer t;
  for (int round = 0; round < kChurnRounds; ++round) {
    for (std::size_t m = 0; m < movers; ++m) {
      const auto id = static_cast<net::NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.n) - 1));
      s.net.set_position(id, {rng.uniform(0, side), rng.uniform(0, side)});
    }
    *edges = s.net.topology_view().edge_count();
  }
  return t.ms();
}

bool same_edges(const net::Topology& a, const net::Topology& b) {
  const auto ea = a.edges();
  const auto eb = b.edges();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].a != eb[i].a || ea[i].b != eb[i].b || ea[i].weight != eb[i].weight)
      return false;
  }
  return true;
}

struct Rung {
  std::size_t n = 0;
  bool brute_checked = false;  ///< brute legs run only up to kBruteCeiling
  double bcast_brute_ms = 0, bcast_grid_ms = 0;
  double conn_brute_ms = 0, conn_grid_ms = 0;
  double maint_rebuild_ms = 0, maint_incremental_ms = 0;
  std::size_t edges = 0;
  std::size_t mem_bytes_per_node = 0;
  bool identical = false;       ///< grid/brute x rebuild/incremental agree
  bool incr_identical = false;  ///< incremental == rebuild, incl. post-churn

  double bcast_speedup() const {
    return brute_checked ? bcast_brute_ms / bcast_grid_ms : 0.0;
  }
  double conn_speedup() const {
    return brute_checked ? conn_brute_ms / conn_grid_ms : 0.0;
  }
  double maint_speedup() const { return maint_rebuild_ms / maint_incremental_ms; }
};

Rung run_rung(std::size_t n) {
  Rung r;
  r.n = n;
  r.brute_checked = n <= kBruteCeiling;
  Substrate reb(n, /*seed=*/7, /*grid=*/true, /*incremental=*/false);
  Substrate inc(n, /*seed=*/7, /*grid=*/true, /*incremental=*/true);

  // Two passes per cell, best-of (first-touch page faults and allocator
  // growth land in the first pass). Every substrate runs the identical
  // operation sequence, so the digest checks are unaffected.
  r.bcast_grid_ms = std::min(time_broadcasts(reb), time_broadcasts(reb));
  time_broadcasts(inc);
  time_broadcasts(inc);

  std::size_t edges_grid = 0;
  r.conn_grid_ms = std::min(time_connectivity(reb, &edges_grid),
                            time_connectivity(reb, &edges_grid));
  r.edges = edges_grid;

  r.identical = true;
  if (r.brute_checked) {
    Substrate brute(n, /*seed=*/7, /*grid=*/false, /*incremental=*/false);
    r.bcast_brute_ms = std::min(time_broadcasts(brute), time_broadcasts(brute));
    std::size_t edges_brute = 0;
    r.conn_brute_ms = std::min(time_connectivity(brute, &edges_brute),
                               time_connectivity(brute, &edges_brute));
    // Equivalence: same edge set (count + per-edge endpoints/weights) and
    // same delivery metrics. Digest equality is the strong check — it
    // covers frame counts, drop reasons, and latency observations.
    r.identical = edges_brute == edges_grid &&
                  same_edges(brute.net.connectivity(), reb.net.connectivity()) &&
                  brute.net.metrics().digest() == reb.net.metrics().digest();
  }

  // The incremental store must agree with the rebuild path before churn...
  r.incr_identical = same_edges(inc.net.topology_view(), reb.net.topology_view()) &&
                     inc.net.metrics().digest() == reb.net.metrics().digest();

  // ...and after: both substrates replay the identical move sequence, the
  // rebuild leg re-scanning per refresh, the incremental leg patching.
  std::size_t edges_reb_churn = 0, edges_inc_churn = 0;
  r.maint_rebuild_ms = time_maintenance(reb, /*seed=*/7, &edges_reb_churn);
  r.maint_incremental_ms = time_maintenance(inc, /*seed=*/7, &edges_inc_churn);
  r.incr_identical = r.incr_identical && edges_reb_churn == edges_inc_churn &&
                     same_edges(inc.net.topology_view(), reb.net.topology_view()) &&
                     inc.net.topology_epoch() == reb.net.topology_epoch();

  const std::size_t total = inc.net.memory_footprint().total();
  r.mem_bytes_per_node = total / (n == 0 ? 1 : n);
  return r;
}

// --- Mobile routed-traffic scenario (ParallelRunner seed sweep) ----------

struct MobilityOutcome {
  std::uint64_t digest = 0;
  double route_ms = 0.0;  // cumulative route_and_send issue time
  std::uint64_t routed = 0;
};

MobilityOutcome mobility_scenario(std::uint64_t seed, bool grid, bool incremental) {
  sim::Simulator sim;
  net::Network net(sim, net::ChannelModel(), sim::Rng(seed ^ 0x5EEDULL));
  net.set_spatial_index_enabled(grid);
  net.set_incremental_connectivity_enabled(incremental);
  sim::Rng rng(seed);
  const double side = side_for(kMobilityNodes);
  const sim::Rect area{{0, 0}, {side, side}};
  net::RadioProfile radio;
  radio.range_m = kRangeM;
  std::vector<things::RandomWaypoint> walkers;
  walkers.reserve(kMobilityNodes);
  for (std::size_t i = 0; i < kMobilityNodes; ++i) {
    net.add_node({rng.uniform(0, side), rng.uniform(0, side)}, radio);
    walkers.emplace_back(area, /*speed_mps=*/15.0, /*pause_s=*/0.0,
                         rng.child(0x30B0ULL + i));
  }

  MobilityOutcome out;
  for (int tick = 0; tick < kMobilityTicks; ++tick) {
    for (std::size_t i = 0; i < kMobilityNodes; ++i) {
      const auto id = static_cast<net::NodeId>(i);
      net.set_position(id, walkers[i].step(net.position(id), 1.0));
    }
    bench::WallTimer t;
    for (int s = 0; s < kRouteSources; ++s) {
      const auto src = static_cast<net::NodeId>((static_cast<std::size_t>(s) * 271 + 13) %
                                                kMobilityNodes);
      for (int d = 0; d < kRouteDests; ++d) {
        const auto dst = static_cast<net::NodeId>(
            (static_cast<std::size_t>(d) * 733 + 512) % kMobilityNodes);
        if (dst == src) continue;
        if (net.route_and_send(src, dst, ping())) ++out.routed;
      }
    }
    out.route_ms += t.ms();
    sim.run();
  }
  out.digest = net.metrics().digest();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::parse_args(argc, argv);
  bench::header("N1/N2: wireless substrate scaling (grid + incremental maintenance)",
                "100,000s of things need geometric queries that do not touch "
                "every endpoint and topology upkeep that does not re-scan the "
                "world; both must change wall time only");

  run_rung(500);  // warmup: heap growth + code paging, result discarded

  const std::vector<std::size_t> ladder = {1000, 2000, 4000, 8000, 16000,
                                           32000, 64000, 128000};
  std::vector<Rung> rungs;
  bench::row("%-8s %-12s %-12s %-8s %-12s %-12s %-8s %-12s %-12s %-8s %-8s %-6s %-6s",
             "n", "bcast_brute", "bcast_grid", "speedup", "conn_brute", "conn_grid",
             "speedup", "maint_reb", "maint_inc", "speedup", "B/node", "same", "inc=");
  bool identical = true;
  for (const std::size_t n : ladder) {
    rungs.push_back(run_rung(n));
    const Rung& r = rungs.back();
    identical = identical && r.identical && r.incr_identical;
    bench::row("%-8zu %-12.2f %-12.2f %-8.2f %-12.2f %-12.2f %-8.2f %-12.2f %-12.2f "
               "%-8.1f %-8zu %-6s %-6s",
               r.n, r.bcast_brute_ms, r.bcast_grid_ms, r.bcast_speedup(),
               r.conn_brute_ms, r.conn_grid_ms, r.conn_speedup(), r.maint_rebuild_ms,
               r.maint_incremental_ms, r.maint_speedup(), r.mem_bytes_per_node,
               r.brute_checked ? (r.identical ? "yes" : "NO") : "skip",
               r.incr_identical ? "yes" : "NO");
  }

  // Mobile routed traffic: per-seed digests must match across all three
  // substrate configs, and the grid sweep's digests must not depend on the
  // worker count.
  const auto seeds = sim::ParallelRunner::seed_range(100, kMobilitySeeds);
  const std::function<MobilityOutcome(sim::ReplicationContext&)> grid_body =
      [](sim::ReplicationContext& ctx) { return mobility_scenario(ctx.seed, true, false); };
  const std::function<MobilityOutcome(sim::ReplicationContext&)> brute_body =
      [](sim::ReplicationContext& ctx) { return mobility_scenario(ctx.seed, false, false); };
  const std::function<MobilityOutcome(sim::ReplicationContext&)> incr_body =
      [](sim::ReplicationContext& ctx) { return mobility_scenario(ctx.seed, true, true); };

  const auto grid_serial = sim::ParallelRunner(1).run<MobilityOutcome>(seeds, grid_body);
  const auto grid_pool =
      sim::ParallelRunner(bench::bench_workers()).run<MobilityOutcome>(seeds, grid_body);
  const auto brute_serial = sim::ParallelRunner(1).run<MobilityOutcome>(seeds, brute_body);
  const auto incr_serial = sim::ParallelRunner(1).run<MobilityOutcome>(seeds, incr_body);

  bool mobility_identical = grid_serial.failures == 0 && grid_pool.failures == 0 &&
                            brute_serial.failures == 0 && incr_serial.failures == 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    mobility_identical =
        mobility_identical &&
        grid_serial.replications[i].payload.digest ==
            brute_serial.replications[i].payload.digest &&
        grid_serial.replications[i].payload.digest ==
            grid_pool.replications[i].payload.digest &&
        grid_serial.replications[i].payload.digest ==
            incr_serial.replications[i].payload.digest &&
        grid_serial.replications[i].payload.routed ==
            brute_serial.replications[i].payload.routed &&
        grid_serial.replications[i].payload.routed ==
            incr_serial.replications[i].payload.routed;
  }
  identical = identical && mobility_identical;

  const auto route_ms = [](const MobilityOutcome& o) { return o.route_ms; };
  const auto grid_route = grid_serial.stats(route_ms);
  const auto brute_route = brute_serial.stats(route_ms);
  const auto incr_route = incr_serial.stats(route_ms);
  bench::row("");
  bench::row("mobility (n=%zu, %d ticks, %zu seeds): routed-send issue time/replication",
             kMobilityNodes, kMobilityTicks, kMobilitySeeds);
  bench::row("  grid+rebuild: %s ms   brute: %s ms   grid+incremental: %s ms   digests %s",
             bench::pm(grid_route, 2).c_str(), bench::pm(brute_route, 2).c_str(),
             bench::pm(incr_route, 2).c_str(),
             mobility_identical ? "identical (brute==grid==incremental, 1==pool workers)"
                                : "MISMATCH");

  std::FILE* f = std::fopen("BENCH_network.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"bench_network\",\n");
    std::fprintf(f, "  \"range_m\": %.1f, \"target_degree\": %.1f, \"broadcasts\": %d, "
                    "\"conn_rebuilds\": %d, \"churn_rounds\": %d, \"brute_ceiling\": %zu,\n",
                 kRangeM, kTargetDegree, kBroadcasts, kConnRebuilds, kChurnRounds,
                 kBruteCeiling);
    std::fprintf(f, "  \"ladder\": [\n");
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      const Rung& r = rungs[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"brute_checked\": %s, "
                   "\"broadcast_brute_ms\": %.3f, "
                   "\"broadcast_grid_ms\": %.3f, \"broadcast_speedup\": %.2f, "
                   "\"connectivity_brute_ms\": %.3f, \"connectivity_grid_ms\": %.3f, "
                   "\"connectivity_speedup\": %.2f, "
                   "\"maintenance_rebuild_ms\": %.3f, "
                   "\"maintenance_incremental_ms\": %.3f, "
                   "\"maintenance_speedup\": %.2f, "
                   "\"mem_bytes_per_node\": %zu, \"edges\": %zu, "
                   "\"identical\": %s, \"incremental_identical\": %s}%s\n",
                   r.n, r.brute_checked ? "true" : "false", r.bcast_brute_ms,
                   r.bcast_grid_ms, r.bcast_speedup(), r.conn_brute_ms, r.conn_grid_ms,
                   r.conn_speedup(), r.maint_rebuild_ms, r.maint_incremental_ms,
                   r.maint_speedup(), r.mem_bytes_per_node, r.edges,
                   r.identical ? "true" : "false", r.incr_identical ? "true" : "false",
                   i + 1 < rungs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"mobility\": {\"n\": %zu, \"ticks\": %d, \"seeds\": %zu, "
                 "\"route_ms_grid_mean\": %.3f, \"route_ms_brute_mean\": %.3f, "
                 "\"route_ms_incremental_mean\": %.3f, "
                 "\"identical\": %s},\n",
                 kMobilityNodes, kMobilityTicks, kMobilitySeeds, grid_route.mean,
                 brute_route.mean, incr_route.mean,
                 mobility_identical ? "true" : "false");
    std::fprintf(f, "  \"identical\": %s\n}\n", identical ? "true" : "false");
    std::fclose(f);
    bench::row("");
    bench::row("wrote BENCH_network.json");
  }

  if (!identical) {
    bench::row("DETERMINISM VIOLATION: substrate configurations disagree");
    return 1;
  }
  return 0;
}
