// N1 — Wireless-substrate scaling harness.
//
// §I's scale claim ("1,000s to 10,000s of things") dies first in the
// network layer: a one-hop broadcast that scans every endpoint and a
// connectivity snapshot that tests all pairs are both O(n^2), which is the
// difference between a 16k-node sweep finishing in seconds or in hours.
// This bench ladders n over {1k..16k} at CONSTANT radio density (the area
// grows with n, so expected degree stays ~10 and the ladder measures
// scaling, not density drift) and times broadcast fan-out and connectivity
// rebuilds with the spatial grid on and off. The part the numbers cannot
// show — that the grid changes wall time and NOTHING else — is verified
// two ways: per-ladder-rung digest/edge-set equality, and a mobile
// routed-traffic scenario swept over seeds on the ParallelRunner whose
// metric digests must be bit-identical across grid/brute AND across
// worker counts. Any mismatch exits nonzero. Emits BENCH_network.json.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "things/mobility.h"

namespace {

using namespace iobt;

constexpr double kRangeM = 150.0;
constexpr double kTargetDegree = 10.0;
constexpr int kBroadcasts = 1024;
constexpr int kConnRebuilds = 3;
constexpr std::size_t kMobilityNodes = 2000;
constexpr std::size_t kMobilitySeeds = 6;
constexpr int kMobilityTicks = 20;
constexpr int kRouteSources = 4;
constexpr int kRouteDests = 4;

/// Area side that keeps expected radio degree at kTargetDegree for n
/// nodes: density = degree / (pi r^2), side = sqrt(n / density).
double side_for(std::size_t n) {
  const double density = kTargetDegree / (3.14159265358979 * kRangeM * kRangeM);
  return std::sqrt(static_cast<double>(n) / density);
}

/// One network instance: n nodes uniform in a density-normalized square.
/// Identical seed => identical node placement in grid and brute modes.
struct Substrate {
  sim::Simulator sim;
  net::Network net;
  std::size_t n;

  Substrate(std::size_t nodes, std::uint64_t seed, bool grid)
      : net(sim, net::ChannelModel(), sim::Rng(seed ^ 0xBADC0DEULL)), n(nodes) {
    net.set_spatial_index_enabled(grid);
    sim::Rng rng(seed);
    const double side = side_for(n);
    net::RadioProfile radio;
    radio.range_m = kRangeM;
    for (std::size_t i = 0; i < n; ++i) {
      net.add_node({rng.uniform(0, side), rng.uniform(0, side)}, radio);
    }
  }
};

net::Message ping() {
  net::Message m;
  m.kind = "bench.ping";
  m.size_bytes = 32;
  return m;
}

/// Times the broadcast ISSUE loop only (candidate enumeration + frame
/// scheduling — the part the grid accelerates); the delivery events are
/// drained untimed afterwards so the digest covers the full outcome.
double time_broadcasts(Substrate& s) {
  bench::WallTimer t;
  for (int i = 0; i < kBroadcasts; ++i) {
    s.net.broadcast(static_cast<net::NodeId>((static_cast<std::size_t>(i) * 7919) % s.n),
                    ping());
  }
  const double ms = t.ms();
  s.sim.run();
  return ms;
}

double time_connectivity(Substrate& s, std::size_t* edges) {
  bench::WallTimer t;
  for (int i = 0; i < kConnRebuilds; ++i) {
    const net::Topology topo = s.net.connectivity();
    *edges = topo.edge_count();
  }
  return t.ms();
}

bool same_edges(const net::Topology& a, const net::Topology& b) {
  const auto ea = a.edges();
  const auto eb = b.edges();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].a != eb[i].a || ea[i].b != eb[i].b || ea[i].weight != eb[i].weight)
      return false;
  }
  return true;
}

struct Rung {
  std::size_t n = 0;
  double bcast_brute_ms = 0, bcast_grid_ms = 0;
  double conn_brute_ms = 0, conn_grid_ms = 0;
  std::size_t edges = 0;
  bool identical = false;

  double bcast_speedup() const { return bcast_brute_ms / bcast_grid_ms; }
  double conn_speedup() const { return conn_brute_ms / conn_grid_ms; }
};

Rung run_rung(std::size_t n) {
  Rung r;
  r.n = n;
  Substrate brute(n, /*seed=*/7, /*grid=*/false);
  Substrate grid(n, /*seed=*/7, /*grid=*/true);

  // Two passes per cell, best-of (first-touch page faults and allocator
  // growth land in the first pass). Both substrates run the identical
  // operation sequence, so the digest check is unaffected.
  r.bcast_brute_ms = std::min(time_broadcasts(brute), time_broadcasts(brute));
  r.bcast_grid_ms = std::min(time_broadcasts(grid), time_broadcasts(grid));

  std::size_t edges_brute = 0, edges_grid = 0;
  r.conn_brute_ms = std::min(time_connectivity(brute, &edges_brute),
                             time_connectivity(brute, &edges_brute));
  r.conn_grid_ms = std::min(time_connectivity(grid, &edges_grid),
                            time_connectivity(grid, &edges_grid));
  r.edges = edges_grid;

  // Equivalence: same edge set (count + per-edge endpoints/weights) and
  // same delivery metrics. Digest equality is the strong check — it covers
  // frame counts, drop reasons, and latency observations.
  r.identical = edges_brute == edges_grid &&
                same_edges(brute.net.connectivity(), grid.net.connectivity()) &&
                brute.net.metrics().digest() == grid.net.metrics().digest();
  return r;
}

// --- Mobile routed-traffic scenario (ParallelRunner seed sweep) ----------

struct MobilityOutcome {
  std::uint64_t digest = 0;
  double route_ms = 0.0;  // cumulative route_and_send issue time
  std::uint64_t routed = 0;
};

MobilityOutcome mobility_scenario(std::uint64_t seed, bool grid) {
  sim::Simulator sim;
  net::Network net(sim, net::ChannelModel(), sim::Rng(seed ^ 0x5EEDULL));
  net.set_spatial_index_enabled(grid);
  sim::Rng rng(seed);
  const double side = side_for(kMobilityNodes);
  const sim::Rect area{{0, 0}, {side, side}};
  net::RadioProfile radio;
  radio.range_m = kRangeM;
  std::vector<things::RandomWaypoint> walkers;
  walkers.reserve(kMobilityNodes);
  for (std::size_t i = 0; i < kMobilityNodes; ++i) {
    net.add_node({rng.uniform(0, side), rng.uniform(0, side)}, radio);
    walkers.emplace_back(area, /*speed_mps=*/15.0, /*pause_s=*/0.0,
                         rng.child(0x30B0ULL + i));
  }

  MobilityOutcome out;
  for (int tick = 0; tick < kMobilityTicks; ++tick) {
    for (std::size_t i = 0; i < kMobilityNodes; ++i) {
      const auto id = static_cast<net::NodeId>(i);
      net.set_position(id, walkers[i].step(net.position(id), 1.0));
    }
    bench::WallTimer t;
    for (int s = 0; s < kRouteSources; ++s) {
      const auto src = static_cast<net::NodeId>((static_cast<std::size_t>(s) * 271 + 13) %
                                                kMobilityNodes);
      for (int d = 0; d < kRouteDests; ++d) {
        const auto dst = static_cast<net::NodeId>(
            (static_cast<std::size_t>(d) * 733 + 512) % kMobilityNodes);
        if (dst == src) continue;
        if (net.route_and_send(src, dst, ping())) ++out.routed;
      }
    }
    out.route_ms += t.ms();
    sim.run();
  }
  out.digest = net.metrics().digest();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::parse_args(argc, argv);
  bench::header("N1: wireless substrate scaling (spatial grid vs brute force)",
                "10,000s of things need geometric queries that do not touch "
                "every endpoint; the grid must change wall time only");

  run_rung(500);  // warmup: heap growth + code paging, result discarded

  const std::vector<std::size_t> ladder = {1000, 2000, 4000, 8000, 16000};
  std::vector<Rung> rungs;
  bench::row("%-8s %-14s %-14s %-10s %-14s %-14s %-10s %-8s %-6s", "n",
             "bcast_brute", "bcast_grid", "speedup", "conn_brute", "conn_grid",
             "speedup", "edges", "same");
  bool identical = true;
  for (const std::size_t n : ladder) {
    rungs.push_back(run_rung(n));
    const Rung& r = rungs.back();
    identical = identical && r.identical;
    bench::row("%-8zu %-14.2f %-14.2f %-10.2f %-14.2f %-14.2f %-10.2f %-8zu %-6s",
               r.n, r.bcast_brute_ms, r.bcast_grid_ms, r.bcast_speedup(),
               r.conn_brute_ms, r.conn_grid_ms, r.conn_speedup(), r.edges,
               r.identical ? "yes" : "NO");
  }

  // Mobile routed traffic: per-seed digests must match grid-vs-brute, and
  // the grid sweep's digests must not depend on the worker count.
  const auto seeds = sim::ParallelRunner::seed_range(100, kMobilitySeeds);
  const std::function<MobilityOutcome(sim::ReplicationContext&)> grid_body =
      [](sim::ReplicationContext& ctx) { return mobility_scenario(ctx.seed, true); };
  const std::function<MobilityOutcome(sim::ReplicationContext&)> brute_body =
      [](sim::ReplicationContext& ctx) { return mobility_scenario(ctx.seed, false); };

  const auto grid_serial = sim::ParallelRunner(1).run<MobilityOutcome>(seeds, grid_body);
  const auto grid_pool =
      sim::ParallelRunner(bench::bench_workers()).run<MobilityOutcome>(seeds, grid_body);
  const auto brute_serial = sim::ParallelRunner(1).run<MobilityOutcome>(seeds, brute_body);

  bool mobility_identical = grid_serial.failures == 0 && grid_pool.failures == 0 &&
                            brute_serial.failures == 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    mobility_identical =
        mobility_identical &&
        grid_serial.replications[i].payload.digest ==
            brute_serial.replications[i].payload.digest &&
        grid_serial.replications[i].payload.digest ==
            grid_pool.replications[i].payload.digest &&
        grid_serial.replications[i].payload.routed ==
            brute_serial.replications[i].payload.routed;
  }
  identical = identical && mobility_identical;

  const auto route_ms = [](const MobilityOutcome& o) { return o.route_ms; };
  const auto grid_route = grid_serial.stats(route_ms);
  const auto brute_route = brute_serial.stats(route_ms);
  bench::row("");
  bench::row("mobility (n=%zu, %d ticks, %zu seeds): routed-send issue time/replication",
             kMobilityNodes, kMobilityTicks, kMobilitySeeds);
  bench::row("  grid:  %s ms   brute: %s ms   digests %s", bench::pm(grid_route, 2).c_str(),
             bench::pm(brute_route, 2).c_str(),
             mobility_identical ? "identical (grid==brute, 1==pool workers)" : "MISMATCH");

  std::FILE* f = std::fopen("BENCH_network.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"bench_network\",\n");
    std::fprintf(f, "  \"range_m\": %.1f, \"target_degree\": %.1f, \"broadcasts\": %d, "
                    "\"conn_rebuilds\": %d,\n",
                 kRangeM, kTargetDegree, kBroadcasts, kConnRebuilds);
    std::fprintf(f, "  \"ladder\": [\n");
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      const Rung& r = rungs[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"broadcast_brute_ms\": %.3f, "
                   "\"broadcast_grid_ms\": %.3f, \"broadcast_speedup\": %.2f, "
                   "\"connectivity_brute_ms\": %.3f, \"connectivity_grid_ms\": %.3f, "
                   "\"connectivity_speedup\": %.2f, \"edges\": %zu, "
                   "\"identical\": %s}%s\n",
                   r.n, r.bcast_brute_ms, r.bcast_grid_ms, r.bcast_speedup(),
                   r.conn_brute_ms, r.conn_grid_ms, r.conn_speedup(), r.edges,
                   r.identical ? "true" : "false", i + 1 < rungs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"mobility\": {\"n\": %zu, \"ticks\": %d, \"seeds\": %zu, "
                 "\"route_ms_grid_mean\": %.3f, \"route_ms_brute_mean\": %.3f, "
                 "\"identical\": %s},\n",
                 kMobilityNodes, kMobilityTicks, kMobilitySeeds, grid_route.mean,
                 brute_route.mean, mobility_identical ? "true" : "false");
    std::fprintf(f, "  \"identical\": %s\n}\n", identical ? "true" : "false");
    std::fclose(f);
    bench::row("");
    bench::row("wrote BENCH_network.json");
  }

  if (!identical) {
    bench::row("DETERMINISM VIOLATION: grid and brute paths disagree");
    return 1;
  }
  return 0;
}
