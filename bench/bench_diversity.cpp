// E10 — Controller diversity (§IV-B).
//
// Paper claim: "diversity is well documented as a way to improve the
// performance of human workgroups. Studies have shown repeatedly that
// diverse groups outperform homogeneous groups. Thus, instead [of] brittle
// controllers designed with fixed assumptions, one may design novel
// controllers that are parameterized differently but adapt their
// parameterization by observing their neighbors."
//
// Operationalization: a population of controllers with 2-D parameter
// vectors; the (unknown, per-scenario) optimum moves between scenarios.
// Performance is -(||p - optimum||^2). Populations evolve by neighbor
// imitation on a ring. We sweep the initial parameter spread (diversity)
// and report the population's best and mean performance after imitation
// rounds — the diverse population finds the optimum, the homogeneous one
// is stuck with its initial guess. Each spread is mean ± stddev over
// kReps replications run on the ParallelRunner pool.

#include <cmath>

#include "adapt/control.h"
#include "bench_util.h"
#include "sim/rng.h"
#include "sim/runner.h"

namespace {

using namespace iobt;

struct Outcome {
  double mean_perf = 0;
  double best_perf = 0;
  double final_diversity = 0;
};

Outcome run(double initial_spread, std::size_t pop_size, sim::Rng& rng) {
  // Controllers start around a legacy design point (0, 0); the real
  // environment wants (3, -2).
  const double opt_x = 3.0, opt_y = -2.0;
  std::vector<std::vector<double>> params(pop_size);
  for (auto& p : params) {
    p = {rng.normal(0.0, initial_spread), rng.normal(0.0, initial_spread)};
  }
  adapt::ImitationPopulation pop(params);

  std::vector<std::vector<std::size_t>> neighbors(pop_size);
  for (std::size_t i = 0; i < pop_size; ++i) {
    neighbors[i] = {(i + pop_size - 1) % pop_size, (i + 1) % pop_size};
  }

  auto perf = [&](std::size_t i) {
    const auto& p = pop.params(i);
    const double dx = p[0] - opt_x, dy = p[1] - opt_y;
    return -(dx * dx + dy * dy);
  };

  for (int round = 0; round < 60; ++round) {
    std::vector<double> scores(pop_size);
    for (std::size_t i = 0; i < pop_size; ++i) scores[i] = perf(i);
    pop.imitate(scores, neighbors, 0.4);
  }

  Outcome out;
  out.best_perf = -1e300;
  for (std::size_t i = 0; i < pop_size; ++i) {
    const double s = perf(i);
    out.mean_perf += s;
    out.best_perf = std::max(out.best_perf, s);
  }
  out.mean_perf /= static_cast<double>(pop_size);
  out.final_diversity = pop.diversity();
  return out;
}

constexpr std::size_t kReps = 10;

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E10: controller diversity",
         "diverse groups outperform homogeneous groups; controllers adapt their "
         "parameterization by observing neighbors");

  const iobt::sim::ParallelRunner runner(
      {.workers = bench_workers(), .repro_program = "bench_diversity"});

  row("%-16s %-16s %-16s %-16s", "init_spread", "mean_perf", "best_perf",
      "final_diversity");
  for (double spread : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    std::vector<std::uint64_t> seeds(kReps);
    for (std::size_t t = 0; t < kReps; ++t) {
      seeds[t] = 1 + 17 * t + static_cast<std::uint64_t>(spread * 10);
    }
    const auto outcome =
        runner.run<Outcome>(seeds, [&](iobt::sim::ReplicationContext& ctx) {
          iobt::sim::Rng rng(ctx.seed);
          return run(spread, 24, rng);
        });
    row("%-16.1f %-16s %-16s %-16s", spread,
        pm(outcome.stats([](const Outcome& o) { return o.mean_perf; }), 2).c_str(),
        pm(outcome.stats([](const Outcome& o) { return o.best_perf; }), 2).c_str(),
        pm(outcome.stats([](const Outcome& o) { return o.final_diversity; }), 4)
            .c_str());
  }
  std::printf(
      "\n(perf = -squared distance to the true optimum at (3,-2); homogeneous\n"
      " populations (spread 0) cannot move — imitation needs variation to select"
      "\n from.)\n");
  return 0;
}
