// E13 (extension) — Multi-target tracking fidelity.
//
// Paper anchor (§II / §III-B): the flagship mission class is "tracking a
// dispersed group of humans and vehicles moving through cluttered
// environments" from noisy, intermittent, partly adversarial detections.
// This harness quantifies the fusion layer the missions stand on:
//   (a) tracking error vs per-scan detection probability (sensing-
//       coverage requirements translate into exactly this knob),
//   (b) tracking error vs clutter rate,
//   (c) trust-weighted fusion vs naive fusion under false-target
//       injection by an untrusted source.

#include "bench_util.h"
#include "sim/rng.h"
#include "track/behavior.h"
#include "track/tracker.h"

namespace {

using namespace iobt;
using track::Detection;
using track::MultiTargetTracker;
using track::TrackerConfig;

struct Sim {
  MultiTargetTracker tracker;
  std::vector<sim::Vec2> pos;
  std::vector<sim::Vec2> vel;
  sim::Rng rng;

  Sim(TrackerConfig cfg, std::uint64_t seed) : tracker(cfg), rng(seed) {}

  void add(sim::Vec2 p, sim::Vec2 v) {
    pos.push_back(p);
    vel.push_back(v);
  }

  void scan(double p_detect, int clutter, double injected_trust,
            int injected_per_scan) {
    std::vector<Detection> dets;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      pos[i] = pos[i] + vel[i];
      if (rng.bernoulli(p_detect)) {
        dets.push_back({{pos[i].x + rng.normal(0, 4.0), pos[i].y + rng.normal(0, 4.0)},
                        4.0,
                        1.0});
      }
    }
    for (int c = 0; c < clutter; ++c) {
      dets.push_back({{rng.uniform(-400, 400), rng.uniform(-400, 400)}, 4.0, 1.0});
    }
    // Adversarial false target: persistent, same spot, from a source whose
    // trust the caller chooses.
    for (int c = 0; c < injected_per_scan; ++c) {
      dets.push_back({{350.0, 350.0}, 4.0, injected_trust});
    }
    tracker.step(1.0, dets);
  }
};

double run_error(double p_detect, int clutter, double injected_trust,
                 int injected_per_scan, TrackerConfig cfg, std::uint64_t seed) {
  Sim s(cfg, seed);
  s.add({-150, 0}, {2, 0.5});
  s.add({150, 50}, {-2, 0});
  s.add({0, -200}, {0.5, 2});
  s.add({-50, 180}, {1.5, -1});
  double err = 0;
  int samples = 0;
  for (int scan = 0; scan < 60; ++scan) {
    s.scan(p_detect, clutter, injected_trust, injected_per_scan);
    if (scan >= 20) {  // after warm-up
      err += s.tracker.tracking_error(s.pos, 100.0);
      ++samples;
    }
  }
  return err / samples;
}

}  // namespace

int main() {
  using namespace iobt::bench;

  header("E13 (extension): multi-target tracking",
         "track dispersed groups through cluttered environments from noisy, "
         "intermittent, partly adversarial detections");

  row("%-12s %-16s", "p_detect", "tracking_error_m");
  for (double pd : {1.0, 0.9, 0.7, 0.5, 0.3}) {
    double e = 0;
    for (std::uint64_t t = 0; t < 5; ++t) {
      e += run_error(pd, 0, 1.0, 0, {}, 100 + t);
    }
    row("%-12.1f %-16.1f", pd, e / 5);
  }

  std::printf("\nclutter sensitivity (p_detect=0.9, confirm_hits=4):\n");
  row("%-16s %-16s", "clutter/scan", "tracking_error_m");
  TrackerConfig robust_cfg;
  robust_cfg.confirm_hits = 4;
  robust_cfg.gate_sigmas = 3.0;
  for (int clutter : {0, 2, 5, 10}) {
    double e = 0;
    for (std::uint64_t t = 0; t < 5; ++t) {
      e += run_error(0.9, clutter, 1.0, 0, robust_cfg, 200 + t);
    }
    row("%-16d %-16.1f", clutter, e / 5);
  }

  std::printf(
      "\nrendezvous prediction (3 tracks converging on (500,500), noisy):\n");
  row("%-16s %-12s %-12s %-14s", "scans_observed", "detected", "eta_err_s",
      "point_err_m");
  {
    // Ground truth: three targets meet at (500,500) at t=100 s.
    const std::vector<std::pair<sim::Vec2, sim::Vec2>> pv = {
        {{0, 500}, {5, 0}}, {{500, 0}, {0, 5}}, {{1000, 500}, {-5, 0}}};
    for (int scans : {5, 10, 20, 40}) {
      MultiTargetTracker t;
      sim::Rng rng(31);
      for (int scan = 0; scan < scans; ++scan) {
        std::vector<Detection> dets;
        for (const auto& [p, v] : pv) {
          dets.push_back({{p.x + v.x * scan + rng.normal(0, 4.0),
                           p.y + v.y * scan + rng.normal(0, 4.0)},
                          4.0,
                          1.0});
        }
        t.step(1.0, dets);
      }
      track::RendezvousConfig cfg;
      cfg.horizon_s = 200;
      cfg.min_participants = 3;
      const auto r = track::predict_rendezvous(t, cfg);
      if (!r) {
        row("%-16d %-12s %-12s %-14s", scans, "no", "-", "-");
        continue;
      }
      const double true_eta = 100.0 - scans;
      row("%-16d %-12s %-12.0f %-14.1f", scans, "yes",
          std::abs(r->eta_s - true_eta),
          sim::distance(r->point, {500, 500}));
    }
  }

  std::printf("\nfalse-target injection (persistent phantom at (350,350)):\n");
  row("%-24s %-16s", "config", "tracking_error_m");
  {
    // Naive fusion: the injector is fully believed.
    double naive = 0, guarded = 0;
    for (std::uint64_t t = 0; t < 5; ++t) {
      naive += run_error(0.9, 0, /*injected_trust=*/1.0, 1, {}, 300 + t);
      TrackerConfig cfg;
      cfg.min_spawn_trust = 0.3;
      // Trust layer has learned the injector is bad (trust 0.1).
      guarded += run_error(0.9, 0, /*injected_trust=*/0.1, 1, cfg, 300 + t);
    }
    row("%-24s %-16.1f", "naive (trust ignored)", naive / 5);
    row("%-24s %-16.1f", "trust-weighted", guarded / 5);
  }
  return 0;
}
