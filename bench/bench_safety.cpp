// E11 — Learning safety via formal bounds (§V-B, refs [34-35]).
//
// Paper claim: verification must "establish safety bounds on data-driven
// learned models" despite "the very large set of reachable states in
// learning systems".
//
// Series regenerated:
//   (a) certified-robust fraction vs perturbation radius epsilon (IBP is
//       sound, so the curve lower-bounds true robustness),
//   (b) verification wall time vs network width (the scalability curve
//       that motivates incomplete-but-cheap methods),
//   (c) distribution of per-example maximum certified epsilon.

#include "bench_util.h"
#include "learn/adversarial.h"
#include "learn/safety.h"
#include "sim/metrics.h"

int main() {
  using namespace iobt;
  using namespace iobt::bench;

  header("E11: learning safety bounds",
         "establish formal safety bounds on learned models at tractable cost");

  sim::Rng data_rng(51);
  const auto train = learn::make_blobs(1500, 2, 4.0, 0.0, data_rng);
  const auto probe = learn::make_blobs(300, 2, 4.0, 0.0, data_rng);

  learn::MlpModel model({2, 16, 1});
  sim::Rng init(52);
  model.randomize(init);
  sim::Rng srng(53);
  model.sgd(train, 6000, 32, 0.2, srng);

  row("%-10s %-18s %-16s", "epsilon", "certified_frac", "clean_accuracy");
  for (double eps : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    const auto r = learn::certify_robustness(model, probe, eps);
    row("%-10.2f %-18.3f %-16.3f", eps, r.certified_fraction, r.clean_accuracy);
  }

  std::printf("\nverification time vs hidden width (300 probes, eps=0.1):\n");
  row("%-10s %-14s %-18s", "width", "train_acc", "verify_time_ms");
  for (std::size_t width : {8u, 16u, 32u, 64u, 128u}) {
    learn::MlpModel m({2, width, 1});
    sim::Rng i2(60 + width);
    m.randomize(i2);
    sim::Rng s2(70 + width);
    m.sgd(train, 4000, 32, 0.2, s2);
    const double acc =
        learn::accuracy(probe, [&](const learn::Vec& x) { return m.predict(x); });
    WallTimer t;
    (void)learn::certify_robustness(m, probe, 0.1);
    row("%-10zu %-14.3f %-18.2f", width, acc, t.ms());
  }

  std::printf("\nattack vs certificate vs defense (rings task, eps=0.2):\n");
  {
    sim::Rng rrng(61);
    const auto rtrain = learn::make_rings(2500, 2, rrng);
    const auto rprobe = learn::make_rings(300, 2, rrng);
    learn::MlpModel nat({2, 32, 1});
    sim::Rng i3(62);
    nat.randomize(i3);
    sim::Rng s3(63);
    nat.sgd(rtrain, 10000, 32, 0.2, s3);

    const learn::PgdConfig attack{.epsilon = 0.2, .step = 0.07, .iterations = 15};
    learn::MlpModel hard({2, 32, 1});
    hard.set_params(nat.params());
    learn::AdversarialTrainConfig acfg;
    acfg.steps = 6000;
    acfg.lr = 0.15;
    acfg.adversarial_fraction = 0.7;
    acfg.attack = attack;
    sim::Rng a3(64);
    learn::adversarial_train(hard, rtrain, acfg, a3);

    row("%-12s %-10s %-12s %-14s", "model", "clean", "pgd_robust", "ibp_certified");
    for (const auto* m : {&nat, &hard}) {
      const double clean = learn::accuracy(
          rprobe, [&](const learn::Vec& x) { return m->predict(x); });
      const double robust = learn::robust_accuracy_pgd(*m, rprobe, attack);
      const double cert =
          learn::certify_robustness(*m, rprobe, attack.epsilon).certified_fraction;
      row("%-12s %-10.3f %-12.3f %-14.3f", m == &nat ? "natural" : "hardened",
          clean, robust, cert);
    }
    std::printf(
        "(certified <= pgd_robust <= clean always: IBP is a sound lower bound,\n"
        " PGD an empirical upper bound. IBP is near-vacuous on this nonlinear\n"
        " boundary — the looseness that motivates the paper's call for better\n"
        " verification technology.)\n");
  }

  std::printf("\nper-example max certified epsilon (first 100 probes):\n");
  {
    sim::Summary s;
    for (std::size_t i = 0; i < 100 && i < probe.size(); ++i) {
      s.add(learn::max_certified_epsilon(model, probe[i].x, probe[i].y, 2.0));
    }
    row("mean=%.3f median=%.3f p10=%.3f p90=%.3f max=%.3f", s.mean(), s.median(),
        s.quantile(0.1), s.quantile(0.9), s.max());
  }
  return 0;
}
