// C1 — Checkpoint/branch/restore for the sim kernel.
//
// The checkpoint layer's contract is digest identity: restore-at-t-then-
// run-to-T must be bit-identical to the uninterrupted run. This bench
// measures what that buys operationally:
//   1. snapshot/restore cost vs world size (save is a deep POD copy; cost
//      should scale linearly with assets + in-flight frames),
//   2. the identity matrix — 8 seeds x workers {1,2,8} x spatial index
//      on/off, every restore digest-checked against its uninterrupted run,
//   3. branched what-if execution: snapshot an adversarial scenario at
//      t = 0.9T and fan K escalation variants out on the ParallelRunner,
//      vs naively re-simulating each variant from t = 0. Every branch must
//      match its naive twin bit-for-bit — the speedup is only reported if
//      the answers are identical,
//   4. campaign resume: a CampaignJournal replays completed replications
//      so a restarted sweep re-runs nothing.
// Emits BENCH_checkpoint.json; exits nonzero on any digest divergence.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/network.h"
#include "security/attacks.h"
#include "sim/checkpoint.h"
#include "sim/rng.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "things/mobility.h"
#include "things/population.h"
#include "things/world.h"

namespace {

using namespace iobt;

// ------------------------------------------------------- Bench scenario ----

/// Minimal scenario-layer checkpoint participant: one rotating beacon
/// broadcaster on a periodic loop, receive handlers counting into the
/// network's metrics. Demonstrates the re-arm contract every service
/// follows (closures are never serialized; the cursor state is).
class BeaconDriver final : public sim::Checkpointable {
 public:
  BeaconDriver(sim::Simulator& sim, net::Network& net) : sim_(sim), net_(net) {
    tag_ = sim_.intern("bench.beacon");
    sim_.checkpoint().register_participant(this);
  }
  ~BeaconDriver() override {
    sim_.cancel(event_);
    sim_.checkpoint().unregister(this);
  }

  void start(sim::Duration period) {
    period_ = period;
    started_ = true;
    install_handlers();
    next_at_ = sim_.now() + period_;
    event_ = sim_.schedule_at(next_at_, [this] { run(); }, tag_);
  }

  std::string_view checkpoint_key() const override { return "bench.beacon"; }

  void save(sim::Snapshot& snap, const std::string& key) const override {
    snap.put(key, State{next_at_, period_, round_, sim_.pending_seq(event_),
                        started_});
  }

  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override {
    sim_.cancel(event_);
    event_ = sim::kNoEvent;
    const auto& st = snap.get<State>(key);
    next_at_ = st.next_at;
    period_ = st.period;
    round_ = st.round;
    started_ = st.started;
    if (started_) {
      install_handlers();
      if (st.seq != 0) {
        armer.rearm(next_at_, st.seq, [this] { run(); }, tag_, &event_);
      }
    }
  }

 private:
  struct State {
    sim::SimTime next_at;
    sim::Duration period;
    std::uint64_t round = 0;
    std::uint64_t seq = 0;
    bool started = false;
  };

  void install_handlers() {
    for (net::NodeId n = 0; n < net_.node_count(); ++n) {
      net_.set_handler(n, [this](const net::Message&) {
        net_.metrics().count("bench.received");
      });
    }
  }

  void run() {
    event_ = sim::kNoEvent;
    const std::size_t n = net_.node_count();
    if (n > 0) {
      const auto src = static_cast<net::NodeId>(round_ % n);
      if (net_.node_up(src)) {
        net_.broadcast(src, net::Message{.kind = "beacon", .size_bytes = 24});
      }
      for (net::NodeId m = static_cast<net::NodeId>(handlers_); m < n; ++m) {
        net_.set_handler(m, [this](const net::Message&) {
          net_.metrics().count("bench.received");
        });
      }
    }
    handlers_ = n;
    ++round_;
    next_at_ = next_at_ + period_;
    event_ = sim_.schedule_at(next_at_, [this] { run(); }, tag_);
  }

  sim::Simulator& sim_;
  net::Network& net_;
  sim::Duration period_;
  sim::TagId tag_ = sim::kUntagged;
  sim::SimTime next_at_;
  std::uint64_t round_ = 0;
  std::size_t handlers_ = 0;
  sim::EventId event_ = sim::kNoEvent;
  bool started_ = false;
};

/// One adversarial stack, deterministic from (seed, population, grid). The
/// campaign covers the interesting snapshot windows: jamming [40, 80) s,
/// Sybil waves at 30 s and 70 s, a mass kill at 90 s.
struct Scenario {
  double side;
  sim::Simulator sim;
  net::Network net;
  things::World world;
  security::AttackInjector attacks;
  BeaconDriver beacon;

  Scenario(std::uint64_t seed, std::size_t population, bool use_grid)
      : side(90.0 * std::sqrt(static_cast<double>(population))),
        net(sim, net::ChannelModel(2.0, 0.2), sim::Rng(seed ^ 0xBE9C0DEULL)),
        world(sim, net, {{0, 0}, {side, side}}, sim::Rng(seed)),
        attacks(world),
        beacon(sim, net) {
    net.set_spatial_index_enabled(use_grid);
    sim::Rng layout(seed * 2654435761ULL + 7);
    for (std::size_t i = 0; i < population; ++i) {
      sim::Rng maker = layout.child(i);
      things::AssetSpec a = things::make_asset_template(
          things::DeviceClass::kSensorMote, things::Affiliation::kBlue, maker);
      a.mobility = std::make_shared<things::RandomWaypoint>(
          world.area(), 4.0, 2.0, maker.child(0xBEAC07));
      world.add_asset(std::move(a), {maker.uniform(0, side), maker.uniform(0, side)},
                      things::radio_for_class(things::DeviceClass::kSensorMote));
    }
    world.start(sim::Duration::seconds(1));
    beacon.start(sim::Duration::millis(500));
    attacks.schedule_jamming({side / 2, side / 2}, side * 0.3,
                             sim::SimTime::seconds(40), sim::SimTime::seconds(80),
                             0.9);
    sim::Rng attack_rng(seed ^ 0x5EC5EC5ECULL);
    attacks.schedule_sybil(4, sim::SimTime::seconds(30), attack_rng);
    attacks.schedule_sybil(3, sim::SimTime::seconds(70), attack_rng);
    attacks.schedule_mass_kill(
        0.2, sim::SimTime::seconds(90),
        [](const things::Asset& a) {
          return a.device_class == things::DeviceClass::kSensorMote;
        },
        attack_rng);
  }

  std::uint64_t digest() const {
    std::uint64_t h = net.metrics().digest();
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    const auto mix_double = [&](double x) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &x, sizeof bits);
      mix(bits);
    };
    mix(static_cast<std::uint64_t>(sim.now().nanos()));
    mix(world.asset_count());
    for (const things::Asset& a : world.assets()) {
      mix(world.asset_alive(a.id) ? 1 : 2);
      const sim::Vec2 p = net.position(a.node);
      mix_double(p.x);
      mix_double(p.y);
    }
    mix(attacks.log().size());
    for (const auto& e : attacks.log()) {
      mix(sim::fnv1a(e.type));
      mix(static_cast<std::uint64_t>(e.at.nanos()));
    }
    return h;
  }
};

constexpr std::uint64_t kSeedBase = 7100;

}  // namespace

int main() {
  using namespace iobt::bench;

  header("C1: deterministic checkpoint / branch / restore",
         "restore-at-t-then-run-to-T is digest-identical to the "
         "uninterrupted run; branching beats naive re-simulation");

  bool all_identical = true;

  // ---- 1. Snapshot/restore cost vs world size -------------------------
  struct LadderRow {
    std::size_t population;
    double save_ms;
    double restore_ms;
    double rewind_run_ms;
    bool identical;
  };
  std::vector<LadderRow> ladder;
  row("%-12s %-10s %-12s %-14s %-10s", "population", "save_ms", "restore_ms",
      "rewind_run_ms", "identical");
  for (const std::size_t population : {std::size_t{250}, std::size_t{1000},
                                       std::size_t{4000}}) {
    Scenario s(kSeedBase, population, true);
    s.sim.run_until(sim::SimTime::seconds(20));

    WallTimer save_t;
    const sim::Snapshot snap = s.sim.checkpoint().save();
    const double save_ms = save_t.ms();

    s.sim.run_until(sim::SimTime::seconds(45));  // into the jamming window
    const std::uint64_t uninterrupted = s.digest();

    WallTimer restore_t;
    s.sim.checkpoint().restore(snap);
    const double restore_ms = restore_t.ms();

    WallTimer rewind_t;
    s.sim.run_until(sim::SimTime::seconds(45));
    const double rewind_run_ms = rewind_t.ms();

    const bool identical = s.digest() == uninterrupted;
    all_identical = all_identical && identical;
    ladder.push_back({population, save_ms, restore_ms, rewind_run_ms, identical});
    row("%-12zu %-10.3f %-12.3f %-14.1f %-10s", population, save_ms, restore_ms,
        rewind_run_ms, identical ? "yes" : "NO");
  }

  // ---- 2. Identity matrix: seeds x workers x spatial index ------------
  const auto seeds = sim::ParallelRunner::seed_range(kSeedBase, 8);
  const auto matrix_body = [](sim::ReplicationContext& ctx, bool use_grid) {
    Scenario source(ctx.seed, 48, use_grid);
    source.sim.run_until(sim::SimTime::seconds(55));  // mid-jam, mid-wave
    const sim::Snapshot snap = source.sim.checkpoint().save();
    source.sim.run_until(sim::SimTime::seconds(90));
    const std::uint64_t uninterrupted = source.digest();

    Scenario branch(ctx.seed, 48, use_grid);
    branch.sim.checkpoint().restore(snap);
    branch.sim.run_until(sim::SimTime::seconds(90));
    const std::uint64_t fresh = branch.digest();

    source.sim.checkpoint().restore(snap);
    source.sim.run_until(sim::SimTime::seconds(90));
    const std::uint64_t rewound = source.digest();

    std::uint64_t mismatches = 0;
    if (fresh != uninterrupted) ++mismatches;
    if (rewound != uninterrupted) ++mismatches;
    ctx.metrics.count("ckpt.digest_lo",
                      static_cast<double>(uninterrupted & 0xffffffffu));
    ctx.metrics.count("ckpt.mismatches", static_cast<double>(mismatches));
    return mismatches;
  };

  row("");
  row("%-10s %-8s %-14s %-18s", "workers", "grid", "mismatches", "merged_digest");
  std::uint64_t matrix_reference = 0;
  bool matrix_identical = true;
  bool first_config = true;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool use_grid : {true, false}) {
      const sim::ParallelRunner runner(workers);
      const auto outcome = runner.run<std::uint64_t>(
          seeds, [&matrix_body, use_grid](sim::ReplicationContext& ctx) {
            return matrix_body(ctx, use_grid);
          });
      std::uint64_t mismatches = outcome.failures;
      for (const auto& r : outcome.replications) mismatches += r.payload;
      const std::uint64_t digest = outcome.merged.digest();
      if (first_config) {
        matrix_reference = digest;
        first_config = false;
      }
      const bool ok = mismatches == 0 && digest == matrix_reference;
      matrix_identical = matrix_identical && ok;
      row("%-10zu %-8s %-14llu %016llx%s", workers, use_grid ? "on" : "off",
          static_cast<unsigned long long>(mismatches),
          static_cast<unsigned long long>(digest), ok ? "" : "  << DIVERGED");
    }
  }
  all_identical = all_identical && matrix_identical;

  // ---- 3. Branched what-if vs naive re-simulation ---------------------
  // K escalation variants of one 100 s scenario, branched at t = 90 s.
  constexpr std::size_t kBranches = 8;
  constexpr std::size_t kBranchPopulation = 300;
  const auto variant = [](security::AttackInjector& attacks, std::size_t k) {
    // What-if: the adversary escalates with a second strike whose severity
    // varies per branch. Scheduled off the tick/beacon grid so no
    // tie-break depends on how we reached t = 90 s.
    attacks.schedule_mass_kill(
        0.05 * static_cast<double>(k + 1), sim::SimTime::seconds(92.25),
        [](const things::Asset&) { return true; },
        sim::Rng(0xE5CA1A7EULL + k));
  };

  WallTimer naive_t;
  const sim::ParallelRunner fan(bench_workers());
  const auto naive = fan.run<std::uint64_t>(
      sim::ParallelRunner::seed_range(0, kBranches),
      [&variant](sim::ReplicationContext& ctx) {
        Scenario s(kSeedBase + 1, kBranchPopulation, true);
        s.sim.run_until(sim::SimTime::seconds(90));
        variant(s.attacks, ctx.index);
        s.sim.run_until(sim::SimTime::seconds(100));
        return s.digest();
      });
  const double naive_ms = naive_t.ms();

  WallTimer branched_t;
  Scenario trunk(kSeedBase + 1, kBranchPopulation, true);
  trunk.sim.run_until(sim::SimTime::seconds(90));
  const sim::Snapshot branch_point = trunk.sim.checkpoint().save();
  const auto branched = fan.run<std::uint64_t>(
      sim::ParallelRunner::seed_range(0, kBranches),
      [&variant, &branch_point](sim::ReplicationContext& ctx) {
        Scenario s(kSeedBase + 1, kBranchPopulation, true);
        s.sim.checkpoint().restore(branch_point);
        variant(s.attacks, ctx.index);
        s.sim.run_until(sim::SimTime::seconds(100));
        return s.digest();
      });
  const double branched_ms = branched_t.ms();

  bool branches_identical = naive.failures == 0 && branched.failures == 0;
  for (std::size_t k = 0; k < kBranches; ++k) {
    branches_identical = branches_identical &&
                         naive.replications[k].payload ==
                             branched.replications[k].payload;
  }
  all_identical = all_identical && branches_identical;
  const double fanout_speedup = branched_ms > 0 ? naive_ms / branched_ms : 0.0;
  row("");
  row("what-if fan-out: %zu branches of a %zu-asset scenario at t=0.9T",
      kBranches, kBranchPopulation);
  row("  naive re-sim from t=0: %.1f ms   branched from snapshot: %.1f ms   "
      "speedup: %.2fx   branch==naive digests: %s",
      naive_ms, branched_ms, fanout_speedup,
      branches_identical ? "yes" : "NO — DIVERGED");

  // ---- 4. Campaign resume through the journal -------------------------
  const std::string journal_path = "BENCH_checkpoint_journal.tmp";
  std::remove(journal_path.c_str());
  const auto resume_body = [](sim::ReplicationContext& ctx) {
    Scenario s(ctx.seed, 48, true);
    s.sim.run_until(sim::SimTime::seconds(60));
    ctx.metrics.merge_from(s.net.metrics());
    return s.digest();
  };
  const auto encode = [](const std::uint64_t& d) { return std::to_string(d); };
  const auto decode = [](std::string_view s) {
    return static_cast<std::uint64_t>(std::stoull(std::string(s)));
  };
  double first_ms = 0, resume_ms = 0;
  std::size_t resumed = 0;
  bool resume_identical = true;
  {
    sim::CampaignJournal journal(journal_path);
    WallTimer t;
    const auto first = fan.run_resumable<std::uint64_t>(seeds, resume_body,
                                                        journal, encode, decode);
    first_ms = t.ms();
    sim::CampaignJournal reopened(journal_path);
    WallTimer t2;
    const auto second = fan.run_resumable<std::uint64_t>(
        seeds, resume_body, reopened, encode, decode);
    resume_ms = t2.ms();
    resumed = second.resumed;
    resume_identical = second.resumed == seeds.size() &&
                       second.merged.digest() == first.merged.digest();
  }
  std::remove(journal_path.c_str());
  all_identical = all_identical && resume_identical;
  row("");
  row("campaign resume: first run %.1f ms, resumed run %.1f ms (%zu/%zu "
      "replications replayed from journal, digests %s)",
      first_ms, resume_ms, resumed, seeds.size(),
      resume_identical ? "identical" : "DIVERGED");

  row("");
  row("all digests identical: %s",
      all_identical ? "yes" : "NO — DETERMINISM VIOLATION");

  // ---- JSON -----------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_checkpoint.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"bench_checkpoint\",\n");
    std::fprintf(f, "  \"digest_identity\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"ladder\": [\n");
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      const auto& r = ladder[i];
      std::fprintf(f,
                   "    {\"population\": %zu, \"save_ms\": %.3f, "
                   "\"restore_ms\": %.3f, \"rewind_run_ms\": %.3f, "
                   "\"identical\": %s}%s\n",
                   r.population, r.save_ms, r.restore_ms, r.rewind_run_ms,
                   r.identical ? "true" : "false",
                   i + 1 == ladder.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"matrix\": {\"seeds\": %zu, \"workers\": [1, 2, 8], "
                 "\"grid\": [true, false], \"all_identical\": %s},\n",
                 seeds.size(), matrix_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"fanout\": {\"branches\": %zu, \"population\": %zu, "
                 "\"naive_ms\": %.1f, \"branched_ms\": %.1f, \"speedup\": "
                 "%.3f, \"identical\": %s},\n",
                 kBranches, kBranchPopulation, naive_ms, branched_ms,
                 fanout_speedup, branches_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"resume\": {\"replications\": %zu, \"first_run_ms\": "
                 "%.1f, \"resume_ms\": %.1f, \"resumed\": %zu, \"identical\": "
                 "%s}\n",
                 seeds.size(), first_ms, resume_ms, resumed,
                 resume_identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    row("");
    row("wrote BENCH_checkpoint.json");
  }
  return all_identical ? 0 : 1;
}
