// E4 — Adaptive reflexes under disruption (Fig. 3).
//
// Paper claim (§IV): reflex-like adaptation is "needed to handle sudden
// disturbances, setbacks and opportunities, while executing a mission";
// §IV-B's concrete example is switching to an alternate sensing modality
// when jamming or smoke blinds the primary.
//
// Series regenerated: mission quality timeline through a camera blackout
// (smoke over the whole sector, the paper's own example) plus a kinetic
// strike, with the reflex layer ON vs OFF. With reflexes the mission
// fails over to radar and re-synthesizes around the losses; without, it
// stays camera-blind for the whole window.

#include "bench_util.h"
#include "core/runtime.h"

namespace {

using namespace iobt;

struct Outcome {
  std::vector<std::pair<double, double>> timeline;  // (t, quality)
  double pre_attack = 0.0;
  double min_during = 1.0;
  double recovery_time_s = -1.0;  // time after strike to reach 0.8*pre
  std::size_t repairs = 0;
  std::size_t switches = 0;
  std::size_t members = 0;
};

Outcome run_mission(bool reflexes, const std::string& trace_path = {}) {
  core::RuntimeConfig cfg;
  cfg.area = {{0, 0}, {1500, 900}};
  cfg.seed = 404;
  cfg.channel_max_edge_loss = 0.1;
  core::Runtime rt(cfg);
  bench::TraceSession trace(rt.simulator(), trace_path);

  things::PopulationConfig pop;
  pop.sensor_motes = 50;
  pop.drones = 10;
  pop.vehicles = 4;
  pop.edge_servers = 1;
  pop.smartphones = 15;
  pop.red_fraction = 0.05;
  pop.mobile_fraction = 0.2;
  rt.populate(pop);

  for (int i = 0; i < 6; ++i) {
    rt.world().add_target({300.0 + 150 * i, 450.0}, nullptr, "hostile");
  }
  rt.start();
  rt.run_for(sim::Duration::seconds(60));

  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{100, 100}, {1400, 800}}, 0.5};
  core::Runtime::MissionOptions opts;
  opts.use_directory = false;
  opts.reflexes = reflexes;
  const auto mid = rt.launch_mission(goal, opts);
  if (!mid) return {};

  // Attack plan: smoke blinds every camera in the sector from 300-600 s;
  // a strike kills 40% of motes and drones at 380 s.
  rt.attacks().schedule_sensor_blackout(things::Modality::kCamera, cfg.area,
                                        sim::SimTime::seconds(300),
                                        sim::SimTime::seconds(600), 1.0);
  rt.attacks().schedule_mass_kill(
      0.6, sim::SimTime::seconds(380),
      [](const things::Asset& a) {
        return a.device_class == things::DeviceClass::kSensorMote ||
               a.device_class == things::DeviceClass::kDrone;
      },
      sim::Rng(11));

  Outcome out;
  for (int step = 1; step <= 36; ++step) {
    rt.run_until(sim::SimTime::seconds(60.0 + 25.0 * step));
    const auto s = rt.mission_status(*mid);
    const double t = rt.simulator().now().to_seconds();
    out.timeline.push_back({t, s.quality});
    if (t < 300) out.pre_attack = std::max(out.pre_attack, s.quality);
    if (t >= 340 && t <= 600) out.min_during = std::min(out.min_during, s.quality);
    if (t > 380 && out.recovery_time_s < 0 && s.quality >= 0.8 * out.pre_attack) {
      out.recovery_time_s = t - 380.0;
    }
    out.repairs = s.repairs;
    out.switches = s.modality_switches;
    out.members = s.member_count;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iobt::bench;
  const BenchArgs args = parse_args(argc, argv);

  header("E4: adaptive reflexes",
         "fast adaptation handles sudden disturbances while executing a mission");

  // The reflexes-ON mission is the traced one: its timeline shows every
  // monitor sweep, reflex fire, and modality switch the table summarizes.
  const Outcome with = run_mission(true, args.trace_path);
  const Outcome without = run_mission(false);

  row("%-8s | %-14s | %-14s", "t(s)", "reflexes_ON", "reflexes_OFF");
  for (std::size_t i = 0; i < with.timeline.size(); ++i) {
    row("%-8.0f | %-14.2f | %-14.2f", with.timeline[i].first, with.timeline[i].second,
        without.timeline[i].second);
  }

  std::printf("\nsummary (camera blackout 300-600s, strike at 380s):\n");
  row("%-14s %-12s %-12s %-14s %-10s %-10s %-10s", "config", "pre_attack",
      "min_during", "recovery_s", "repairs", "switches", "members");
  row("%-14s %-12.2f %-12.2f %-14.0f %-10zu %-10zu %-10zu", "reflexes_ON",
      with.pre_attack, with.min_during, with.recovery_time_s, with.repairs,
      with.switches, with.members);
  row("%-14s %-12.2f %-12.2f %-14.0f %-10zu %-10zu %-10zu", "reflexes_OFF",
      without.pre_attack, without.min_during, without.recovery_time_s,
      without.repairs, without.switches, without.members);
  return 0;
}
