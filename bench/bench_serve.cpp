// S1 — Campaign service: open-loop what-if query mixes over the snapshot
// cache.
//
// The service's economics claim is simple: queries about the same
// battlefield share their prefix, so a standing query stream should pay the
// full from-t=0 simulation cost only once per distinct (spec, seed, branch)
// and amortize it across every what-if branched from it. This bench drives
// three open-loop mixes through iobt::serve::CampaignService:
//   hot    — many deltas per few prefixes, cache pre-warmed (steady state),
//   cold   — every query a fresh prefix (worst case, no reuse),
//   mixed  — half hot, half cold (a plausible duty cycle),
// and reports queries/sec, p50/p99 per-query latency, and cache hit rate
// per mix. Correctness gates the numbers: a panel of served queries is
// digest-checked against CampaignService::run_uncached (serial re-sim from
// t = 0) across worker counts {1, 2, 8}; any divergence exits nonzero.
//
// A warm-restart section then exercises the durable snapshot tier: one
// service populates a snapshot directory cold, is destroyed, and a SECOND
// service over the same directory answers the same batch by re-warming
// from disk — digest-identical, at a measured speedup. Emits
// BENCH_serve.json.
//
// Flags: --queries=N (per mix, default 24), --workers=N (default
// bench_workers()), --snapshot-dir=PATH (durable tier directory for the
// warm-restart section; defaults to a scratch dir wiped on entry — an
// explicit path is NOT wiped, so a prior process's snapshots survive),
// --restart-only (skip the mixes: re-warm from --snapshot-dir as if this
// process replaced a killed predecessor, verify identity + disk hits, emit
// BENCH_serve_restart.json), --uncached seed=S branch=Ts
// delta=NAME:INTENSITY:SALT delay=D (re-run one query serially — the repro
// line the service emits).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dissem/scenario.h"
#include "serve/serve.h"

namespace {

using namespace iobt;

// The bench's scenario family: the stock two-layer force with waypoint
// mobility and a clean (unattacked) declared future — every attack arrives
// as a what-if delta. Branch late so branches are cheap relative to the
// prefix, which is exactly the regime the service exists for.
constexpr double kHorizonS = 60.0;
constexpr double kBranchS = 50.0;
constexpr std::uint64_t kSeedBase = 8200;

dissem::DissemSpec base_spec() {
  dissem::DissemSpec spec;
  spec.name = "serve-bench";
  spec.layers = dissem::ground_aerial_layers();
  spec.mobility = dissem::MobilityKind::kWaypoint;
  spec.attack = dissem::AttackCampaign::kNone;
  spec.intensity = 0.0;
  spec.horizon_s = kHorizonS;
  return spec;
}

serve::WhatIfDelta delta_for(std::size_t i) {
  static constexpr dissem::AttackCampaign kCycle[] = {
      dissem::AttackCampaign::kJamming, dissem::AttackCampaign::kRegionStrike,
      dissem::AttackCampaign::kGatewayHunt, dissem::AttackCampaign::kCombined};
  serve::WhatIfDelta d;
  d.attack = kCycle[i % 4];
  d.intensity = 0.3 + 0.05 * static_cast<double>(i % 8);
  d.salt = i;
  return d;
}

serve::Query make_query(std::uint64_t seed, std::size_t delta_index) {
  serve::Query q;
  q.spec = base_spec();
  q.seed = seed;
  q.branch_time_s = kBranchS;
  q.delta = delta_for(delta_index);
  return q;
}

struct MixRow {
  std::string mix;
  std::size_t queries = 0;
  std::size_t prefixes = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::size_t prefix_sims = 0;
  std::size_t failures = 0;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::max(0.0, std::ceil(p * static_cast<double>(xs.size())) - 1.0));
  return xs[std::min(rank, xs.size() - 1)];
}

MixRow measure(const std::string& name, serve::CampaignService& svc,
               const std::vector<serve::Query>& batch) {
  const serve::BatchResult res = svc.submit(batch);
  MixRow row;
  row.mix = name;
  row.queries = batch.size();
  row.wall_ms = res.wall_ms;
  row.qps = res.wall_ms > 0
                ? 1000.0 * static_cast<double>(batch.size()) / res.wall_ms
                : 0.0;
  std::vector<double> lat;
  lat.reserve(res.results.size());
  for (const auto& r : res.results) {
    if (!r.rejected) lat.push_back(r.latency_ms);
  }
  row.p50_ms = percentile(lat, 0.50);
  row.p99_ms = percentile(lat, 0.99);
  row.hit_rate = batch.empty()
                     ? 0.0
                     : static_cast<double>(res.cache_hits) /
                           static_cast<double>(batch.size());
  row.prefix_sims = res.prefix_sims;
  row.failures = res.failures + res.rejected;
  return row;
}

// --uncached repro mode: re-run exactly one query serially, outside the
// service, and print its digest. This is the line QueryResult::repro names.
int run_uncached_mode(int argc, char** argv) {
  serve::Query q = make_query(kSeedBase, 0);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("seed=", 0) == 0) {
      q.seed = std::strtoull(arg.c_str() + 5, nullptr, 10);
    } else if (arg.rfind("branch=", 0) == 0) {
      q.branch_time_s = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("delta=", 0) == 0) {
      // NAME:INTENSITY:SALT, NAME as printed by dissem::to_string.
      const std::string body = arg.substr(6);
      const auto c1 = body.find(':');
      const auto c2 = body.find(':', c1 == std::string::npos ? 0 : c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        std::fprintf(stderr, "bad --uncached delta spec: %s\n", body.c_str());
        return 2;
      }
      const std::string attack = body.substr(0, c1);
      bool known = false;
      for (const auto a :
           {dissem::AttackCampaign::kNone, dissem::AttackCampaign::kJamming,
            dissem::AttackCampaign::kRegionStrike,
            dissem::AttackCampaign::kGatewayHunt,
            dissem::AttackCampaign::kCombined}) {
        if (dissem::to_string(a) == attack) {
          q.delta.attack = a;
          known = true;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown attack campaign: %s\n", attack.c_str());
        return 2;
      }
      q.delta.intensity = std::strtod(body.c_str() + c1 + 1, nullptr);
      q.delta.salt = std::strtoull(body.c_str() + c2 + 1, nullptr, 10);
    } else if (arg.rfind("delay=", 0) == 0) {
      q.delta.delay_s = std::strtod(arg.c_str() + 6, nullptr);
    }
  }
  const dissem::DissemOutcome o = serve::CampaignService::run_uncached(q);
  std::printf("uncached: seed=%llu branch=%gs prefix=%016llx digest=%016llx "
              "reach=%.3f informed=%zu/%zu\n",
              static_cast<unsigned long long>(q.seed), q.branch_time_s,
              static_cast<unsigned long long>(serve::prefix_hash(q)),
              static_cast<unsigned long long>(o.digest), o.reach, o.informed,
              o.nodes);
  return 0;
}

// ---- Warm restart: the durable tier across a process boundary -----------

// The restart batch: 4 what-ifs over 2 prefixes, seeds disjoint from every
// mix so the section always starts cold, branched LATE (55 s of the 60 s
// horizon) so the measured speedup isolates what the durable tier saves —
// the prefix history — from the branch tail both runs must pay. Both
// halves of the kill-and-restart check (this process and a --restart-only
// successor) must build the identical batch — it is the protocol between
// them.
std::vector<serve::Query> restart_batch() {
  std::vector<serve::Query> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    serve::Query q = make_query(kSeedBase + 7000 + (i % 2), i);
    q.branch_time_s = 55.0;
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> restart_reference(
    const std::vector<serve::Query>& batch) {
  std::vector<std::uint64_t> reference;
  reference.reserve(batch.size());
  for (const auto& q : batch) {
    reference.push_back(serve::CampaignService::run_uncached(q).digest);
  }
  return reference;
}

bool digests_match(const serve::BatchResult& res,
                   const std::vector<std::uint64_t>& reference) {
  if (res.failures != 0 || res.rejected != 0) return false;
  for (std::size_t k = 0; k < reference.size(); ++k) {
    if (!res.results[k].ok || res.results[k].outcome.digest != reference[k]) {
      return false;
    }
  }
  return true;
}

struct RestartRow {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  std::size_t disk_hits = 0;
  std::size_t disk_stores = 0;
  bool identity = false;
  bool ok = false;
};

// In-process kill-and-restart: service A answers the batch cold and
// persists every prefix; A is destroyed (its memory tier dies with it);
// service B over the same directory answers the same batch by re-warming
// from disk. The digest bar is run_uncached, same as everywhere else.
RestartRow warm_restart_section(const std::string& dir, std::size_t workers) {
  const std::vector<serve::Query> batch = restart_batch();
  const std::vector<std::uint64_t> reference = restart_reference(batch);

  serve::CampaignService::Options so;
  so.workers = workers;
  so.repro_program = "bench_serve";
  so.snapshot_dir = dir;

  RestartRow out;
  {
    serve::CampaignService cold(so);
    const serve::BatchResult res = cold.submit(batch);
    out.cold_ms = res.wall_ms;
    out.disk_stores = cold.cache_stats().disk_stores;
  }
  serve::CampaignService warm(so);
  const serve::BatchResult res = warm.submit(batch);
  out.warm_ms = res.wall_ms;
  out.speedup = res.wall_ms > 0 ? out.cold_ms / res.wall_ms : 0.0;
  out.disk_hits = res.disk_hits;
  out.identity = digests_match(res, reference);
  out.ok = out.identity && out.disk_hits > 0;
  return out;
}

// --restart-only: the successor process of the CI kill-and-restart check.
// A predecessor (a full bench run with the same --snapshot-dir) populated
// the durable tier and is gone; this process must answer the restart batch
// from disk, digest-identical to serial re-simulation.
int run_restart_only(const std::string& dir, std::size_t workers) {
  using namespace iobt::bench;
  header("S1 restart: re-warm the campaign service from a durable tier",
         "a fresh process answers from its predecessor's snapshots — "
         "digest-identical to serial re-sim, no prefix re-simulation");
  const std::vector<serve::Query> batch = restart_batch();
  const std::vector<std::uint64_t> reference = restart_reference(batch);

  serve::CampaignService::Options so;
  so.workers = workers;
  so.repro_program = "bench_serve";
  so.snapshot_dir = dir;
  serve::CampaignService svc(so);
  const serve::BatchResult res = svc.submit(batch);
  const bool identity = digests_match(res, reference);
  const bool ok = identity && res.disk_hits > 0;

  row("%-10s %-12s %-12s %-12s %-10s", "queries", "disk_hits", "prefix_sims",
      "identical", "wall_ms");
  row("%-10zu %-12zu %-12zu %-12s %-10.1f", batch.size(), res.disk_hits,
      res.prefix_sims, identity ? "yes" : "NO", res.wall_ms);
  if (!ok) {
    row("RESTART CHECK FAILED: %s",
        identity ? "no disk hits (durable tier missed)" : "digest diverged");
  }

  std::FILE* f = std::fopen("BENCH_serve_restart.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"bench_serve_restart\",\n");
    std::fprintf(f, "  \"queries\": %zu,\n", batch.size());
    std::fprintf(f, "  \"disk_hits\": %zu,\n", res.disk_hits);
    std::fprintf(f, "  \"prefix_sims\": %zu,\n", res.prefix_sims);
    std::fprintf(f, "  \"digest_identity\": %s,\n", identity ? "true" : "false");
    std::fprintf(f, "  \"wall_ms\": %.1f\n", res.wall_ms);
    std::fprintf(f, "}\n");
    std::fclose(f);
    row("");
    row("wrote BENCH_serve_restart.json");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iobt::bench;

  std::size_t queries = 24;
  std::size_t workers = bench_workers();
  std::string snapshot_dir;
  bool restart_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--uncached") return run_uncached_mode(argc, argv);
    if (arg.rfind("--queries=", 0) == 0) {
      queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--snapshot-dir=", 0) == 0) {
      snapshot_dir = arg.substr(15);
    } else if (arg == "--restart-only") {
      restart_only = true;
    }
  }
  queries = std::max<std::size_t>(4, queries);
  if (restart_only) {
    if (snapshot_dir.empty()) snapshot_dir = "bench_serve_snapshots.tmp";
    return run_restart_only(snapshot_dir, workers);
  }
  if (snapshot_dir.empty()) {
    // Scratch directory: wiped so the warm-restart section measures a true
    // cold start. A user-provided --snapshot-dir is deliberately NOT wiped
    // (it is the handoff to a --restart-only successor process).
    snapshot_dir = "bench_serve_snapshots.tmp";
    std::error_code ec;
    std::filesystem::remove_all(snapshot_dir, ec);
  }

  header("S1: campaign service — open-loop what-if query mixes",
         "a standing query stream amortizes each scenario prefix across all "
         "the what-ifs branched from it; served == serial re-sim, always");

  // ---- 1. Digest identity panel across worker counts ------------------
  // One query per delta kind, all digest-checked against run_uncached and
  // against each other across {1, 2, 8} workers. The throughput numbers
  // below are only meaningful if this gate holds.
  std::vector<serve::Query> panel;
  for (std::size_t k = 0; k < 4; ++k) {
    panel.push_back(make_query(kSeedBase + (k % 2), k));
  }
  std::vector<std::uint64_t> reference;
  reference.reserve(panel.size());
  for (const auto& q : panel) {
    reference.push_back(serve::CampaignService::run_uncached(q).digest);
  }
  bool identity = true;
  row("%-10s %-12s %-18s", "workers", "identical", "panel_digest_lo");
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    serve::CampaignService::Options so;
    so.workers = w;
    so.repro_program = "bench_serve";
    serve::CampaignService svc(so);
    const serve::BatchResult res = svc.submit(panel);
    bool ok = res.failures == 0 && res.rejected == 0;
    std::uint64_t lo = 0;
    for (std::size_t k = 0; k < panel.size(); ++k) {
      ok = ok && res.results[k].ok &&
           res.results[k].outcome.digest == reference[k];
      lo ^= res.results[k].outcome.digest;
    }
    identity = identity && ok;
    row("%-10zu %-12s %016llx%s", w, ok ? "yes" : "NO",
        static_cast<unsigned long long>(lo), ok ? "" : "  << DIVERGED");
    if (!ok) {
      for (const auto& r : res.results) {
        if (!r.repro.empty()) row("  repro: %s", r.repro.c_str());
      }
    }
  }

  // ---- 2. Open-loop mixes ---------------------------------------------
  serve::CampaignService::Options so;
  so.workers = workers;
  so.cache_capacity = 64;
  so.repro_program = "bench_serve";
  std::vector<MixRow> mixes;

  // hot: 4 prefixes, queries/4 deltas each, cache pre-warmed — the steady
  // state of a standing campaign against a known battlefield.
  {
    constexpr std::size_t kPrefixes = 4;
    std::vector<serve::Query> batch;
    for (std::size_t i = 0; i < queries; ++i) {
      batch.push_back(make_query(kSeedBase + (i % kPrefixes), i));
    }
    serve::CampaignService svc(so);
    std::vector<serve::Query> warm;
    for (std::size_t p = 0; p < kPrefixes; ++p) {
      warm.push_back(make_query(kSeedBase + p, 0));
    }
    (void)svc.submit(warm);  // pay the prefixes outside the measured window
    MixRow r = measure("hot", svc, batch);
    r.prefixes = kPrefixes;
    mixes.push_back(r);
  }
  // cold: every query a fresh prefix — no sharing, the naive cost floor.
  {
    std::vector<serve::Query> batch;
    for (std::size_t i = 0; i < queries; ++i) {
      batch.push_back(make_query(kSeedBase + 1000 + i, i));
    }
    serve::CampaignService svc(so);
    MixRow r = measure("cold", svc, batch);
    r.prefixes = queries;
    mixes.push_back(r);
  }
  // mixed: half the stream on 2 warmed prefixes, half fresh.
  {
    std::vector<serve::Query> batch;
    for (std::size_t i = 0; i < queries; ++i) {
      const bool hot = (i % 2) == 0;
      batch.push_back(make_query(
          hot ? kSeedBase + (i % 4) / 2 : kSeedBase + 2000 + i, i));
    }
    serve::CampaignService svc(so);
    std::vector<serve::Query> warm = {make_query(kSeedBase + 0, 0),
                                      make_query(kSeedBase + 1, 1)};
    (void)svc.submit(warm);
    MixRow r = measure("mixed", svc, batch);
    r.prefixes = 2 + queries / 2;
    mixes.push_back(r);
  }

  row("");
  row("%-8s %-9s %-10s %-10s %-10s %-10s %-10s %-12s %-9s", "mix", "queries",
      "wall_ms", "qps", "p50_ms", "p99_ms", "hit_rate", "prefix_sims",
      "failures");
  for (const MixRow& m : mixes) {
    row("%-8s %-9zu %-10.1f %-10.2f %-10.1f %-10.1f %-10.2f %-12zu %-9zu",
        m.mix.c_str(), m.queries, m.wall_ms, m.qps, m.p50_ms, m.p99_ms,
        m.hit_rate, m.prefix_sims, m.failures);
  }
  const double hot_qps = mixes[0].qps;
  const double cold_qps = mixes[1].qps;
  const double speedup = cold_qps > 0 ? hot_qps / cold_qps : 0.0;
  bool failures_clean = true;
  for (const MixRow& m : mixes) failures_clean = failures_clean && m.failures == 0;
  row("");
  row("hot vs cold throughput: %.2fx   digest identity (workers 1/2/8 vs "
      "serial): %s",
      speedup, identity ? "yes" : "NO — DIVERGED");

  // ---- 3. Warm restart over the durable tier ---------------------------
  const RestartRow restart = warm_restart_section(snapshot_dir, workers);
  row("");
  row("%-14s %-10s %-10s %-10s %-11s %-12s %-10s", "warm_restart", "cold_ms",
      "warm_ms", "speedup", "disk_hits", "disk_stores", "identical");
  row("%-14s %-10.1f %-10.1f %-10.2f %-11zu %-12zu %-10s", "", restart.cold_ms,
      restart.warm_ms, restart.speedup, restart.disk_hits, restart.disk_stores,
      restart.identity ? "yes" : "NO — DIVERGED");

  // ---- JSON -----------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"bench_serve\",\n");
    std::fprintf(f, "  \"digest_identity\": %s,\n",
                 identity ? "true" : "false");
    std::fprintf(f,
                 "  \"identity_panel\": {\"queries\": %zu, \"workers\": "
                 "[1, 2, 8]},\n",
                 panel.size());
    std::fprintf(f, "  \"workers\": %zu,\n", workers);
    std::fprintf(f, "  \"mixes\": [\n");
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      const MixRow& m = mixes[i];
      std::fprintf(f,
                   "    {\"mix\": \"%s\", \"queries\": %zu, \"prefixes\": "
                   "%zu, \"wall_ms\": %.1f, \"qps\": %.3f, \"p50_ms\": %.2f, "
                   "\"p99_ms\": %.2f, \"hit_rate\": %.3f, \"prefix_sims\": "
                   "%zu, \"failures\": %zu}%s\n",
                   m.mix.c_str(), m.queries, m.prefixes, m.wall_ms, m.qps,
                   m.p50_ms, m.p99_ms, m.hit_rate, m.prefix_sims, m.failures,
                   i + 1 == mixes.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"hot_vs_cold_speedup\": %.3f,\n", speedup);
    std::fprintf(f,
                 "  \"warm_restart\": {\"cold_ms\": %.1f, \"warm_ms\": %.1f, "
                 "\"speedup\": %.3f, \"disk_hits\": %zu, \"disk_stores\": %zu, "
                 "\"identity\": %s}\n",
                 restart.cold_ms, restart.warm_ms, restart.speedup,
                 restart.disk_hits, restart.disk_stores,
                 restart.identity ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    row("");
    row("wrote BENCH_serve.json");
  }
  return (identity && failures_clean && restart.ok) ? 0 : 1;
}
