#!/usr/bin/env bash
# Docs-vs-tree consistency gate.
#
# The docs (README/DESIGN/EXPERIMENTS/ROADMAP) name concrete artifacts:
# bench binaries, source files, CLI flags. Those references rot silently
# when code moves, so CI runs this script and fails the build if any doc
# references a bench target, file path, or flag that no longer exists.
set -u
cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md)
fail=0

err() {
  echo "check_docs: $1" >&2
  fail=1
}

# 1. Every `bench_<name>` token must have a matching bench/bench_<name>.cpp.
#    (`bench_foo.txt` style capture-file names are not targets.)
for doc in "${DOCS[@]}"; do
  for tok in $(grep -oE 'bench_[a-z0-9_]+(\.[a-z]+)?' "$doc" | sort -u); do
    case "$tok" in
      *.cpp) tok=${tok%.cpp} ;;
      *.*) continue ;;
    esac
    [[ -f "bench/${tok}.cpp" ]] ||
      err "$doc references bench target '$tok' but bench/${tok}.cpp does not exist"
  done
done

# 2. Every slash-containing source-file path mentioned in a doc must exist,
#    either verbatim or under src/ (docs use module-relative includes like
#    sim/runner.h). Generated artifacts (build*/, *.json) and URLs are skipped.
for doc in "${DOCS[@]}"; do
  for path in $(grep -oE '[A-Za-z0-9_][A-Za-z0-9_./-]*\.(cpp|h|sh)' "$doc" | sort -u); do
    case "$path" in
      */*) ;;
      *) continue ;;           # bare filenames are prose, not paths
    esac
    case "$path" in
      build*/*) continue ;;
    esac
    [[ -e "$path" || -e "src/$path" ]] ||
      err "$doc references '$path' but neither it nor src/$path exists"
  done
done

# 3. Every --flag the docs attribute to a bench (a flag on the same line as
#    a bench_* invocation) must appear in bench/ sources. cmake/ctest flags
#    on non-bench lines are not ours to check.
for doc in "${DOCS[@]}"; do
  for flag in $(grep -E 'bench_[a-z0-9_]+ +--' "$doc" |
                grep -oE '\-\-[a-z][a-z0-9-]+' | sort -u); do
    grep -rqF -- "$flag" bench/ ||
      err "$doc references bench flag '$flag' but no bench/ source mentions it"
  done
done

# 4. Every `BENCH_<name>.json` artifact the docs cite must actually be
#    produced by some bench source. The common case is the eponymous
#    bench/bench_<name>.cpp, but one binary may write several artifacts
#    (bench_serve also writes BENCH_serve_restart.json), so fall back to
#    searching all of bench/ for the filename.
for doc in "${DOCS[@]}"; do
  for art in $(grep -oE 'BENCH_[A-Za-z0-9_]+\.json' "$doc" | sort -u); do
    name=${art#BENCH_}
    name=${name%.json}
    src="bench/bench_${name}.cpp"
    if [[ -f "$src" ]]; then
      grep -qF "$art" "$src" ||
        err "$doc cites artifact '$art' but $src never writes it"
    else
      grep -rqF "$art" bench/ ||
        err "$doc cites artifact '$art' but no bench/ source writes it"
    fi
  done
done

# 5. Every src/ module directory must be listed in the README architecture
#    block and the DESIGN repository layout — new subsystems must be
#    documented, not just merged.
for mod in src/*/; do
  mod=$(basename "$mod")
  grep -qE "^${mod}/" README.md ||
    err "README.md architecture block is missing module '${mod}/'"
  grep -qE "(^|[ \`(])${mod}/" DESIGN.md ||
    err "DESIGN.md repository layout is missing module '${mod}/'"
done

# 6. The reverse of rule 1: every bench target registered in
#    bench/CMakeLists.txt must be cited by at least one doc — a bench no
#    doc names is an experiment nobody can find.
for tgt in $(grep -oE 'iobt_bench\([a-z0-9_]+\)' bench/CMakeLists.txt |
             sed -E 's/iobt_bench\(([a-z0-9_]+)\)/\1/' | sort -u); do
  cited=0
  for doc in "${DOCS[@]}"; do
    grep -qF "$tgt" "$doc" && cited=1 && break
  done
  [[ $cited -eq 1 ]] ||
    err "bench target '$tgt' (bench/CMakeLists.txt) is not cited by any doc"
done

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED — docs reference artifacts that do not exist" >&2
  exit 1
fi
echo "check_docs: OK (${#DOCS[@]} docs checked against the tree)"
